// Package dvs implements dynamic voltage scaling for multi-mode schedules:
// a greedy steepest-descent slack-distribution heuristic over a constraint
// graph of scheduled activities, in the spirit of the PV-DVS technique of
// Schmitz/Al-Hashimi (ISSS'01) that the DATE 2003 paper extends.
//
// The package also implements the paper's section 4.2 transformation
// (Fig. 5): on a DVS-enabled hardware component all cores share one supply
// voltage, so the potentially parallel core executions are folded into an
// equivalent chain of sequential virtual tasks (segments); voltages are
// then selected per segment exactly as for software tasks.
package dvs

import (
	"math"
	"sort"

	"momosyn/internal/energy"
	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// Segment is one virtual task of the hardware-core DVS transformation: a
// maximal time interval during which the set of executing cores of one
// hardware PE is constant and non-empty.
type Segment struct {
	Start, End float64
	// Power is the summed nominal dynamic power of the active cores.
	Power float64
	// Active lists the tasks executing during the segment.
	Active []model.TaskID
}

// Duration returns the nominal length of the segment.
//
//mm:noalloc
func (s Segment) Duration() float64 { return s.End - s.Start }

// Transform folds the (possibly parallel) executions of the given task
// slots — all on one hardware PE — into the sequential virtual-task chain
// of paper Fig. 5. Slots must have strictly positive durations; empty gaps
// between executions produce no segment.
func Transform(slots []sched.TaskSlot) []Segment {
	type ev struct {
		t     float64
		delta int // +1 start, -1 end
		slot  int
	}
	var evs []ev
	for i := range slots {
		evs = append(evs, ev{slots[i].Start, +1, i}, ev{slots[i].Finish, -1, i})
	}
	sort.Slice(evs, func(i, j int) bool {
		switch {
		case evs[i].t < evs[j].t:
			return true
		case evs[j].t < evs[i].t:
			return false
		}
		// Ends before starts so zero-length overlaps do not merge segments.
		return evs[i].delta < evs[j].delta
	})
	active := make(map[int]bool)
	var segs []Segment
	prev := math.Inf(-1)
	for _, e := range evs {
		if len(active) > 0 && e.t > prev {
			seg := Segment{Start: prev, End: e.t}
			for si := range active {
				seg.Power += slots[si].Power
				seg.Active = append(seg.Active, slots[si].Task)
			}
			sort.Slice(seg.Active, func(i, j int) bool { return seg.Active[i] < seg.Active[j] })
			segs = append(segs, seg)
		}
		if e.delta > 0 {
			active[e.slot] = true
		} else {
			delete(active, e.slot)
		}
		prev = e.t
	}
	return segs
}

// node is one activity of the scaling constraint graph.
type node struct {
	// dur is the current (possibly stretched) duration; nom the duration at
	// nominal voltage.
	dur, nom float64
	power    float64
	pe       *model.PE // nil for communications
	level    int       // current voltage level index (into pe.Levels)
	deadline float64   // +Inf when unconstrained
	scalable bool

	preds, succs []int32

	start, finish, lf float64

	// Bookkeeping to write results back to the schedule.
	task  model.TaskID // valid when kind == nkTask
	edge  model.EdgeID // valid when kind == nkComm
	segPE model.PEID   // valid when kind == nkSeg
	seg   Segment      // valid when kind == nkSeg
	kind  nodeKind
}

type nodeKind uint8

const (
	nkTask nodeKind = iota
	nkComm
	nkSeg
)

// graph is the scaling constraint graph of one mode.
type graph struct {
	nodes []node
	order []int32 // topological order
	// startOf/endOf map a task to the node carrying its start/finish
	// (identical for plain tasks, first/last segment for DVS hardware).
	startOf, endOf []int32
}

// Config tunes voltage selection. The zero value is the paper's full
// technique.
type Config struct {
	// SoftwareOnly restricts scaling to software processors, disabling the
	// Fig. 5 hardware-core transformation. This reproduces the prior-work
	// DVS of [10]/[11] that the paper extends, and is used by the ablation
	// experiments.
	SoftwareOnly bool
}

// Scale selects supply voltages for all scalable activities of the
// schedule, minimising dynamic energy while preserving every deadline and
// the schedule's activity orders. The schedule's slots are updated in
// place (times, voltage indices, energies). It returns true when at least
// one activity was slowed down.
//
// Infeasible schedules (unroutable communications or deadline violations)
// are left untouched: there is no slack to distribute.
func Scale(s *model.System, sc *sched.Schedule) bool {
	return ScaleWith(s, sc, Config{})
}

// ScaleWith is Scale with explicit configuration.
func ScaleWith(s *model.System, sc *sched.Schedule, cfg Config) bool {
	if sc.Unroutable > 0 || sc.Lateness(s) > 1e-9 {
		return false
	}
	g := buildGraph(s, sc, cfg)
	if g == nil {
		return false
	}
	changed := greedyScale(g)
	writeBack(s, sc, g)
	return changed
}

// buildGraph assembles the constraint graph: task/segment/communication
// nodes, precedence edges via communications, and resource-order chains for
// software PEs, hardware core instances, DVS hardware segments and CLs.
// Returns nil when the graph has no scalable node.
func buildGraph(s *model.System, sc *sched.Schedule, cfg Config) *graph {
	mode := s.App.Mode(sc.Mode)
	tg := mode.Graph
	n := len(tg.Tasks)
	g := &graph{
		startOf: make([]int32, n),
		endOf:   make([]int32, n),
	}
	for i := range g.startOf {
		g.startOf[i] = -1
		g.endOf[i] = -1
	}

	anyScalable := false
	// Group hardware-DVS slots per PE; emit plain nodes for the rest.
	hwSlots := make(map[model.PEID][]sched.TaskSlot)
	for ti := range sc.Tasks {
		slot := sc.Tasks[ti]
		pe := s.Arch.PE(slot.PE)
		if pe.Class.IsHardware() && pe.Scalable() && !cfg.SoftwareOnly {
			hwSlots[pe.ID] = append(hwSlots[pe.ID], slot)
			continue
		}
		scal := pe.Scalable() && pe.Class.IsSoftware()
		if scal {
			anyScalable = true
		}
		id := int32(len(g.nodes))
		g.nodes = append(g.nodes, node{
			kind:     nkTask,
			task:     slot.Task,
			dur:      slot.NomTime,
			nom:      slot.NomTime,
			power:    slot.Power,
			pe:       pe,
			level:    maxLevel(pe),
			deadline: tg.Task(slot.Task).EffectiveDeadline(mode.Period),
			scalable: scal,
		})
		g.startOf[slot.Task] = id
		g.endOf[slot.Task] = id
	}
	// Segment nodes for DVS hardware PEs (Fig. 5 transformation).
	var hwPEs []model.PEID
	for pe := range hwSlots {
		hwPEs = append(hwPEs, pe)
	}
	sort.Slice(hwPEs, func(i, j int) bool { return hwPEs[i] < hwPEs[j] })
	for _, peID := range hwPEs {
		pe := s.Arch.PE(peID)
		slots := hwSlots[peID]
		segs := Transform(slots)
		anyScalable = anyScalable || len(segs) > 0
		lastSeg := make(map[model.TaskID]int32)
		var prev int32 = -1
		for _, seg := range segs {
			id := int32(len(g.nodes))
			g.nodes = append(g.nodes, node{
				kind:     nkSeg,
				segPE:    peID,
				seg:      seg,
				dur:      seg.Duration(),
				nom:      seg.Duration(),
				power:    seg.Power,
				pe:       pe,
				level:    maxLevel(pe),
				deadline: math.Inf(1),
				scalable: true,
			})
			if prev >= 0 {
				addEdge(g, prev, id)
			}
			prev = id
			for _, t := range seg.Active {
				if g.startOf[t] < 0 {
					g.startOf[t] = id
				}
				lastSeg[t] = id
			}
		}
		// Deadlines attach to the segment in which each task finishes.
		for t, id := range lastSeg {
			g.endOf[t] = id
			d := tg.Task(t).EffectiveDeadline(mode.Period)
			if d < g.nodes[id].deadline {
				g.nodes[id].deadline = d
			}
		}
	}
	if !anyScalable {
		return nil
	}

	// Communication nodes and precedence edges.
	clChains := make(map[model.CLID][]int32)
	type commRef struct {
		node  int32
		start float64
	}
	clSlots := make(map[model.CLID][]commRef)
	for ei := range sc.Comms {
		cs := sc.Comms[ei]
		e := tg.Edge(model.EdgeID(ei))
		src, dst := g.endOf[e.Src], g.startOf[e.Dst]
		if cs.Routed && cs.CL != model.NoCL && cs.Time > 0 {
			id := int32(len(g.nodes))
			g.nodes = append(g.nodes, node{
				kind:     nkComm,
				edge:     model.EdgeID(ei),
				dur:      cs.Time,
				nom:      cs.Time,
				power:    cs.Power,
				deadline: math.Inf(1),
			})
			addEdge(g, src, id)
			addEdge(g, id, dst)
			clSlots[cs.CL] = append(clSlots[cs.CL], commRef{id, cs.Start})
		} else {
			addEdge(g, src, dst)
		}
	}
	for cl, refs := range clSlots {
		sort.Slice(refs, func(i, j int) bool {
			switch {
			case refs[i].start < refs[j].start:
				return true
			case refs[j].start < refs[i].start:
				return false
			}
			return refs[i].node < refs[j].node
		})
		for _, r := range refs {
			clChains[cl] = append(clChains[cl], r.node)
		}
		chain := clChains[cl]
		for i := 1; i < len(chain); i++ {
			addEdge(g, chain[i-1], chain[i])
		}
	}

	// Resource chains for software PEs and non-DVS hardware core instances.
	type resKey struct {
		pe   model.PEID
		tt   model.TaskTypeID
		core int
	}
	chains := make(map[resKey][]int32)
	var keys []resKey
	for ti := range sc.Tasks {
		slot := sc.Tasks[ti]
		pe := s.Arch.PE(slot.PE)
		if pe.Class.IsHardware() && pe.Scalable() && !cfg.SoftwareOnly {
			continue // ordering enforced by the segment chain
		}
		var k resKey
		if pe.Class.IsHardware() {
			k = resKey{slot.PE, tg.Task(slot.Task).Type, slot.Core}
		} else {
			k = resKey{slot.PE, -1, -1}
		}
		if _, ok := chains[k]; !ok {
			keys = append(keys, k)
		}
		chains[k] = append(chains[k], g.startOf[slot.Task])
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pe != b.pe {
			return a.pe < b.pe
		}
		if a.tt != b.tt {
			return a.tt < b.tt
		}
		return a.core < b.core
	})
	for _, k := range keys {
		chain := chains[k]
		sort.Slice(chain, func(i, j int) bool {
			a, b := chain[i], chain[j]
			sa := sc.Tasks[g.nodes[a].task].Start
			sb := sc.Tasks[g.nodes[b].task].Start
			switch {
			case sa < sb:
				return true
			case sb < sa:
				return false
			}
			return a < b
		})
		for i := 1; i < len(chain); i++ {
			addEdge(g, chain[i-1], chain[i])
		}
	}

	if !topoSort(g) {
		return nil
	}
	return g
}

// maxLevel returns the top voltage-level index of the PE, or -1 when the
// PE does not support DVS.
//
//mm:noalloc
func maxLevel(pe *model.PE) int {
	if !pe.DVS {
		return -1
	}
	return len(pe.Levels) - 1
}

func addEdge(g *graph, from, to int32) {
	if from < 0 || to < 0 || from == to {
		return
	}
	g.nodes[from].succs = append(g.nodes[from].succs, to)
	g.nodes[to].preds = append(g.nodes[to].preds, from)
}

// topoSort fills g.order (Kahn); returns false on a cycle, which indicates
// an internal inconsistency and disables scaling.
func topoSort(g *graph) bool {
	n := len(g.nodes)
	indeg := make([]int, n)
	for i := range g.nodes {
		for range g.nodes[i].preds {
			indeg[i]++
		}
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	g.order = g.order[:0]
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.order = append(g.order, v)
		for _, w := range g.nodes[v].succs {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return len(g.order) == n
}

// timestamp runs the forward (earliest start/finish) and backward (latest
// finish) passes over the current durations.
//
//mm:noalloc
func timestamp(g *graph) {
	for _, v := range g.order {
		nd := &g.nodes[v]
		st := 0.0
		for _, p := range nd.preds {
			if f := g.nodes[p].finish; f > st {
				st = f
			}
		}
		nd.start = st
		nd.finish = st + nd.dur
	}
	for i := len(g.order) - 1; i >= 0; i-- {
		v := g.order[i]
		nd := &g.nodes[v]
		lf := nd.deadline
		for _, s := range nd.succs {
			sn := &g.nodes[s]
			if v2 := sn.lf - sn.dur; v2 < lf {
				lf = v2
			}
		}
		nd.lf = lf
	}
}

// greedyScale repeatedly applies the single voltage-step move with the
// best energy-saving per added delay until no feasible move remains.
//
//mm:noalloc
func greedyScale(g *graph) bool {
	changed := false
	for {
		timestamp(g)
		best := -1
		bestRatio := 0.0
		var bestDur float64
		for i := range g.nodes {
			nd := &g.nodes[i]
			if !nd.scalable || nd.level <= 0 || nd.nom <= 0 {
				continue
			}
			pe := nd.pe
			vCur := pe.Levels[nd.level]
			vNext := pe.Levels[nd.level-1]
			newDur := energy.ScaledTime(nd.nom, vNext, pe.Vmax, pe.Vt)
			dt := newDur - nd.dur
			if dt <= 0 {
				continue
			}
			slack := nd.lf - nd.finish
			if dt > slack+1e-12 {
				continue
			}
			gain := energy.EnergySaving(nd.power, nd.nom, vCur, vNext, pe.Vmax)
			if gain <= 0 {
				continue
			}
			if r := gain / dt; r > bestRatio {
				bestRatio = r
				best = i
				bestDur = newDur
			}
		}
		if best < 0 {
			return changed
		}
		g.nodes[best].level--
		g.nodes[best].dur = bestDur
		changed = true
	}
}

// writeBack transfers the scaled timing, voltages and energies from the
// constraint graph into the schedule slots.
func writeBack(s *model.System, sc *sched.Schedule, g *graph) {
	timestamp(g)
	// Per-task accumulation for segmented hardware tasks.
	type acc struct {
		start, finish float64
		energyJ       float64
		minLevel      int
		seen          bool
	}
	accs := make(map[model.TaskID]*acc)
	makespan := 0.0
	for i := range g.nodes {
		nd := &g.nodes[i]
		if nd.finish > makespan {
			makespan = nd.finish
		}
		switch nd.kind {
		case nkTask:
			slot := &sc.Tasks[nd.task]
			slot.Start = nd.start
			slot.Finish = nd.finish
			if nd.pe.DVS {
				slot.VoltIdx = nd.level
				slot.Energy = energy.TaskEnergy(nd.power, nd.nom, nd.pe.Levels[nd.level], nd.pe.Vmax)
			} else {
				slot.Energy = nd.power * nd.nom
			}
		case nkComm:
			slot := &sc.Comms[nd.edge]
			slot.Start = nd.start
			slot.Finish = nd.finish
		case nkSeg:
			v := nd.pe.Levels[nd.level]
			r := v / nd.pe.Vmax
			for _, t := range nd.seg.Active {
				a := accs[t]
				if a == nil {
					a = &acc{start: nd.start, minLevel: nd.level}
					accs[t] = a
				}
				if !a.seen {
					a.start = nd.start
					a.seen = true
				} else if nd.start < a.start {
					a.start = nd.start
				}
				if nd.finish > a.finish {
					a.finish = nd.finish
				}
				if nd.level < a.minLevel {
					a.minLevel = nd.level
				}
				// Energy share of this task within the segment: its own
				// nominal power over the segment's nominal length, scaled
				// by the segment's voltage ratio squared.
				a.energyJ += sc.Tasks[t].Power * nd.nom * r * r
			}
		}
	}
	for t, a := range accs {
		slot := &sc.Tasks[t]
		slot.Start = a.start
		slot.Finish = a.finish
		slot.VoltIdx = a.minLevel
		slot.Energy = a.energyJ
	}
	sc.Makespan = makespan
}
