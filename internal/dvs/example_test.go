package dvs_test

import (
	"fmt"

	"momosyn/internal/dvs"
	"momosyn/internal/sched"
)

// ExampleTransform reproduces the hardware-core DVS transformation of
// paper Fig. 5: parallel executions on the cores of one scalable hardware
// component fold into a chain of sequential virtual tasks, each carrying
// the combined power of the cores active during its interval.
func ExampleTransform() {
	slots := []sched.TaskSlot{
		{Task: 0, Core: 0, Start: 0, Finish: 4, Power: 1e-3},
		{Task: 1, Core: 0, Start: 4, Finish: 6, Power: 2e-3},
		{Task: 2, Core: 1, Start: 1, Finish: 4, Power: 4e-3},
		{Task: 3, Core: 1, Start: 4, Finish: 5, Power: 8e-3},
		{Task: 4, Core: 1, Start: 5, Finish: 6, Power: 16e-3},
	}
	for _, seg := range dvs.Transform(slots) {
		fmt.Printf("[%g,%g) %2.0fmW %v\n", seg.Start, seg.End, seg.Power*1e3, seg.Active)
	}
	// Output:
	// [0,1)  1mW [0]
	// [1,4)  5mW [0 2]
	// [4,5) 10mW [1 3]
	// [5,6) 18mW [1 4]
}
