package dvs

import (
	"testing"

	"momosyn/internal/allocpin"
	"momosyn/internal/sched"
)

// Sinks defeat dead-code elimination of the measured calls.
var (
	sinkF float64
	sinkI int
	sinkB bool
)

// TestAllocPins proves every //mm:noalloc function in this package runs
// with zero allocations on realistic inputs (see internal/allocpin).
func TestAllocPins(t *testing.T) {
	sys := dvsSystem(t, 0.1)
	sc, err := sched.ListSchedule(sys, 0, mapAll(sys, 0), sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(sys, sc, Config{})
	if g == nil {
		t.Fatal("constraint graph must have scalable nodes")
	}
	seg := Segment{Start: 1e-3, End: 4e-3}
	pe := sys.Arch.PEs[0]

	allocpin.Verify(t, ".", []allocpin.Pin{
		{Name: "Segment.Duration", Body: func() { sinkF = seg.Duration() }},
		{Name: "maxLevel", Body: func() { sinkI = maxLevel(pe) }},
		{Name: "timestamp", Body: func() { timestamp(g) }},
		// The first run performs all voltage moves; later runs verify the
		// fixed point is allocation-free too. AllocsPerRun's warm-up run
		// absorbs nothing here because greedyScale never allocates.
		{Name: "greedyScale", Body: func() { sinkB = greedyScale(g) }},
	})
}
