package dvs

import (
	"math"
	"testing"

	"momosyn/internal/energy"
	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// TestGreedyNearBruteForceOptimum anchors the greedy voltage-selection
// heuristic against the exhaustively enumerated optimum on a chain of
// three tasks with a shared deadline — small enough to try every discrete
// level combination. The greedy result must stay within 5% of the optimal
// energy (on most instances it matches exactly).
func TestGreedyNearBruteForceOptimum(t *testing.T) {
	levels := []float64{1.8, 2.5, 3.3}
	const vmax, vt = 3.3, 0.8
	times := []float64{10e-3, 6e-3, 14e-3}
	powers := []float64{5e-3, 9e-3, 3e-3}

	for _, laxity := range []float64{1.0, 1.3, 1.7, 2.4, 4.0} {
		serial := 0.0
		for _, tm := range times {
			serial += tm
		}
		period := serial * laxity

		b := model.NewBuilder("opt")
		b.AddPE(model.PE{
			Name: "cpu", Class: model.GPP, DVS: true,
			Vmax: vmax, Vt: vt, Levels: levels,
		})
		b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu")
		names := []string{"a", "b", "c"}
		for i := range names {
			b.AddType("t"+names[i], model.ImplSpec{PE: "cpu", Time: times[i], Power: powers[i]})
		}
		b.BeginMode("m", 1, period)
		for i, n := range names {
			b.AddTask(n, "t"+names[i], 0)
		}
		b.AddEdge("a", "b", 0)
		b.AddEdge("b", "c", 0)
		sys, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		mapping := model.NewMapping(sys.App)
		for ti := range mapping[0] {
			mapping[0][ti] = 0
		}
		sc, err := sched.ListSchedule(sys, 0, mapping, sched.SingleCores{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		Scale(sys, sc)
		if late := sc.Lateness(sys); late > 1e-9 {
			t.Fatalf("laxity %v: greedy scaling violated the deadline", laxity)
		}
		got := sc.DynamicEnergy()

		// Brute force: all 3^3 level assignments whose summed scaled times
		// fit the period.
		best := math.Inf(1)
		for i := 0; i < len(levels); i++ {
			for j := 0; j < len(levels); j++ {
				for k := 0; k < len(levels); k++ {
					lv := []int{i, j, k}
					total, e := 0.0, 0.0
					for x := 0; x < 3; x++ {
						total += energy.ScaledTime(times[x], levels[lv[x]], vmax, vt)
						e += energy.TaskEnergy(powers[x], times[x], levels[lv[x]], vmax)
					}
					if total <= period+1e-12 && e < best {
						best = e
					}
				}
			}
		}
		if got > best*1.05+1e-15 {
			t.Errorf("laxity %v: greedy energy %.6g > 1.05 x optimum %.6g", laxity, got, best)
		}
		if got < best-1e-15 {
			t.Errorf("laxity %v: greedy energy %.6g below the enumerated optimum %.6g (enumeration bug?)",
				laxity, got, best)
		}
	}
}
