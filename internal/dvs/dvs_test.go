package dvs

import (
	"math"
	"testing"

	"momosyn/internal/energy"
	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// TestTransformFig5 reproduces the shape of paper Fig. 5: five hardware
// tasks on two cores fold into three sequential virtual tasks. Core 0 runs
// τ0 [0,4] and τ1 [4,6]; core 1 runs τ2 [1,4], τ3 [4,5] and τ4 [5,6] —
// segment boundaries fall where the active-core set changes.
func TestTransformFig5(t *testing.T) {
	slots := []sched.TaskSlot{
		{Task: 0, Core: 0, Start: 0, Finish: 4, Power: 1},
		{Task: 1, Core: 0, Start: 4, Finish: 6, Power: 2},
		{Task: 2, Core: 1, Start: 1, Finish: 4, Power: 4},
		{Task: 3, Core: 1, Start: 4, Finish: 5, Power: 8},
		{Task: 4, Core: 1, Start: 5, Finish: 6, Power: 16},
	}
	segs := Transform(slots)
	// Expected segments: [0,1) τ0 alone; [1,4) τ0+τ2; [4,5) τ1+τ3;
	// [5,6) τ1+τ4.
	want := []Segment{
		{Start: 0, End: 1, Power: 1, Active: []model.TaskID{0}},
		{Start: 1, End: 4, Power: 5, Active: []model.TaskID{0, 2}},
		{Start: 4, End: 5, Power: 10, Active: []model.TaskID{1, 3}},
		{Start: 5, End: 6, Power: 18, Active: []model.TaskID{1, 4}},
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d: %+v", len(segs), len(want), segs)
	}
	for i, w := range want {
		g := segs[i]
		if g.Start != w.Start || g.End != w.End || g.Power != w.Power {
			t.Errorf("segment %d = %+v, want %+v", i, g, w)
		}
		if len(g.Active) != len(w.Active) {
			t.Errorf("segment %d active = %v, want %v", i, g.Active, w.Active)
			continue
		}
		for j := range w.Active {
			if g.Active[j] != w.Active[j] {
				t.Errorf("segment %d active = %v, want %v", i, g.Active, w.Active)
			}
		}
	}
	// Energy is conserved by the transformation at nominal voltage:
	// sum(P_seg * len) == sum(P_task * dur).
	segE, taskE := 0.0, 0.0
	for _, s := range segs {
		segE += s.Power * s.Duration()
	}
	for _, s := range slots {
		taskE += s.Power * (s.Finish - s.Start)
	}
	if math.Abs(segE-taskE) > 1e-12 {
		t.Errorf("transformation changed total energy: %v != %v", segE, taskE)
	}
}

func TestTransformGapBreaksSegments(t *testing.T) {
	slots := []sched.TaskSlot{
		{Task: 0, Start: 0, Finish: 1, Power: 1},
		{Task: 1, Start: 2, Finish: 3, Power: 1},
	}
	segs := Transform(slots)
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2 (idle gap must not merge)", len(segs))
	}
	if segs[0].End != 1 || segs[1].Start != 2 {
		t.Errorf("segments %+v do not respect the gap", segs)
	}
}

func TestTransformEmpty(t *testing.T) {
	if segs := Transform(nil); len(segs) != 0 {
		t.Errorf("empty input must give no segments, got %v", segs)
	}
}

// dvsSystem builds one DVS GPP (levels 1.2/1.8/2.5/3.3) with a chain of two
// tasks and a generous period, so scaling has room.
func dvsSystem(t *testing.T, period float64) *model.System {
	t.Helper()
	b := model.NewBuilder("dvs")
	b.AddPE(model.PE{
		Name: "cpu", Class: model.GPP, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.2, 1.8, 2.5, 3.3},
	})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu")
	b.AddType("k", model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 2e-3})
	b.BeginMode("m", 1, period)
	b.AddTask("a", "k", 0)
	b.AddTask("b", "k", 0)
	b.AddEdge("a", "b", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func mapAll(sys *model.System, pe model.PEID) model.Mapping {
	m := model.NewMapping(sys.App)
	for mi := range m {
		for ti := range m[mi] {
			m[mi][ti] = pe
		}
	}
	return m
}

func TestScaleReducesEnergyAndKeepsDeadlines(t *testing.T) {
	sys := dvsSystem(t, 0.1) // 20 ms of work in a 100 ms period
	sc, err := sched.ListSchedule(sys, 0, mapAll(sys, 0), sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := sc.DynamicEnergy()
	if !Scale(sys, sc) {
		t.Fatal("ample slack: scaling must change the schedule")
	}
	after := sc.DynamicEnergy()
	if after >= before {
		t.Errorf("energy must drop: %v -> %v", before, after)
	}
	if late := sc.Lateness(sys); late > 1e-9 {
		t.Errorf("scaling violated deadlines: lateness %v", late)
	}
	for i := range sc.Tasks {
		if sc.Tasks[i].VoltIdx == len(sys.Arch.PEs[0].Levels)-1 {
			t.Errorf("task %d still at top voltage despite 5x slack", i)
		}
		// Stretched execution must match the alpha-power law.
		slot := sc.Tasks[i]
		v := sys.Arch.PEs[0].Levels[slot.VoltIdx]
		wantDur := energy.ScaledTime(slot.NomTime, v, 3.3, 0.8)
		if math.Abs((slot.Finish-slot.Start)-wantDur) > 1e-9 {
			t.Errorf("task %d duration %v, want %v at %vV", i, slot.Finish-slot.Start, wantDur, v)
		}
	}
}

func TestScaleTightScheduleUntouched(t *testing.T) {
	sys := dvsSystem(t, 20e-3) // exactly the serial time: zero slack
	sc, err := sched.ListSchedule(sys, 0, mapAll(sys, 0), sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Scale(sys, sc) {
		t.Error("zero slack: no scaling move can be feasible")
	}
	for i := range sc.Tasks {
		if sc.Tasks[i].VoltIdx != len(sys.Arch.PEs[0].Levels)-1 {
			t.Errorf("task %d voltage lowered despite zero slack", i)
		}
	}
}

func TestScaleSkipsInfeasibleSchedule(t *testing.T) {
	sys := dvsSystem(t, 15e-3) // 20 ms of work in 15 ms: infeasible
	sc, err := sched.ListSchedule(sys, 0, mapAll(sys, 0), sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Lateness(sys) <= 0 {
		t.Fatal("test setup: schedule should be late")
	}
	if Scale(sys, sc) {
		t.Error("infeasible schedules must not be scaled")
	}
}

func TestScaleRespectsDiscreteLevels(t *testing.T) {
	sys := dvsSystem(t, 30e-3) // serial 20 ms in 30 ms: moderate slack
	sc, err := sched.ListSchedule(sys, 0, mapAll(sys, 0), sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	Scale(sys, sc)
	if late := sc.Lateness(sys); late > 1e-9 {
		t.Errorf("lateness after scaling: %v", late)
	}
	// With levels {1.2 1.8 2.5 3.3}, 1.5x total slack admits 2.5 V
	// (1.64x stretch) for at most one of the two tasks, never 1.2 V.
	for i := range sc.Tasks {
		if v := sys.Arch.PEs[0].Levels[sc.Tasks[i].VoltIdx]; v < 1.8-1e-9 {
			t.Errorf("task %d at %vV: too aggressive for the available slack", i, v)
		}
	}
}

// hwDVSSystem: a DVS ASIC with two cores' worth of parallel tasks plus a
// software task depending on them.
func hwDVSSystem(t *testing.T, period float64) *model.System {
	t.Helper()
	b := model.NewBuilder("hwdvs")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{
		Name: "hw", Class: model.ASIC, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.8, 2.5, 3.3}, Area: 1000,
	})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e7}, "cpu", "hw")
	b.AddType("h1",
		model.ImplSpec{PE: "hw", Time: 4e-3, Power: 1e-3, Area: 100},
		model.ImplSpec{PE: "cpu", Time: 40e-3, Power: 5e-3},
	)
	b.AddType("h2",
		model.ImplSpec{PE: "hw", Time: 3e-3, Power: 2e-3, Area: 120},
		model.ImplSpec{PE: "cpu", Time: 30e-3, Power: 5e-3},
	)
	b.AddType("s", model.ImplSpec{PE: "cpu", Time: 5e-3, Power: 1e-3})
	b.BeginMode("m", 1, period)
	b.AddTask("p1", "h1", 0)
	b.AddTask("p2", "h2", 0)
	b.AddTask("post", "s", 0)
	b.AddEdge("p1", "post", 100)
	b.AddEdge("p2", "post", 100)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestScaleHardwareCoresViaTransformation(t *testing.T) {
	sys := hwDVSSystem(t, 50e-3)
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1], m[0][2] = 1, 1, 0
	sc, err := sched.ListSchedule(sys, 0, m, sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := sc.DynamicEnergy()
	if !Scale(sys, sc) {
		t.Fatal("hardware DVS with slack must scale")
	}
	after := sc.DynamicEnergy()
	if after >= before {
		t.Errorf("hardware scaling must reduce energy: %v -> %v", before, after)
	}
	if late := sc.Lateness(sys); late > 1e-9 {
		t.Errorf("lateness after hardware scaling: %v", late)
	}
	// Hardware tasks share the scaled supply: both must report lowered
	// voltages.
	for i := 0; i < 2; i++ {
		if sc.Tasks[i].VoltIdx >= len(sys.Arch.PEs[1].Levels)-1 {
			t.Errorf("hw task %d not scaled (volt idx %d)", i, sc.Tasks[i].VoltIdx)
		}
	}
	// The software successor must still start after both producers.
	post := sc.Tasks[2]
	for i := 0; i < 2; i++ {
		if post.Start < sc.Tasks[i].Finish-1e-9 {
			t.Errorf("successor starts at %v before producer %d finishes at %v",
				post.Start, i, sc.Tasks[i].Finish)
		}
	}
}

func TestScalePreservesPrecedenceThroughComms(t *testing.T) {
	sys := hwDVSSystem(t, 100e-3)
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1], m[0][2] = 1, 1, 0
	sc, err := sched.ListSchedule(sys, 0, m, sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	Scale(sys, sc)
	for ei := range sc.Comms {
		cs := sc.Comms[ei]
		e := sys.App.Modes[0].Graph.Edge(model.EdgeID(ei))
		if cs.Start < sc.Tasks[e.Src].Finish-1e-9 {
			t.Errorf("comm %d starts before its producer finishes", ei)
		}
		if sc.Tasks[e.Dst].Start < cs.Finish-1e-9 {
			t.Errorf("consumer of comm %d starts before the message arrives", ei)
		}
	}
}

func TestScaleNonDVSSystemNoChange(t *testing.T) {
	b := model.NewBuilder("plain")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu")
	b.AddType("k", model.ImplSpec{PE: "cpu", Time: 1e-3, Power: 1e-3})
	b.BeginMode("m", 1, 0.1)
	b.AddTask("a", "k", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.ListSchedule(sys, 0, mapAll(sys, 0), sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Scale(sys, sc) {
		t.Error("no DVS PE: scaling must be a no-op")
	}
}

// TestScaleEnergyAccountingMatchesFormula verifies the reported per-task
// energies follow E = Pmax*tmin*(Vdd/Vmax)^2 after scaling.
func TestScaleEnergyAccountingMatchesFormula(t *testing.T) {
	sys := dvsSystem(t, 0.1)
	sc, err := sched.ListSchedule(sys, 0, mapAll(sys, 0), sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	Scale(sys, sc)
	for i := range sc.Tasks {
		slot := sc.Tasks[i]
		v := sys.Arch.PEs[0].Levels[slot.VoltIdx]
		want := energy.TaskEnergy(slot.Power, slot.NomTime, v, 3.3)
		if math.Abs(slot.Energy-want) > 1e-15 {
			t.Errorf("task %d energy %v, want %v", i, slot.Energy, want)
		}
	}
}

func TestScaleSoftwareOnlyLeavesHardwareNominal(t *testing.T) {
	sys := hwDVSSystem(t, 50e-3)
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1], m[0][2] = 1, 1, 0
	sc, err := sched.ListSchedule(sys, 0, m, sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ScaleWith(sys, sc, Config{SoftwareOnly: true})
	// Hardware tasks stay at nominal voltage and nominal duration.
	for i := 0; i < 2; i++ {
		slot := sc.Tasks[i]
		if slot.VoltIdx != len(sys.Arch.PEs[1].Levels)-1 {
			t.Errorf("hw task %d scaled despite SoftwareOnly", i)
		}
		if math.Abs((slot.Finish-slot.Start)-slot.NomTime) > 1e-12 {
			t.Errorf("hw task %d stretched despite SoftwareOnly", i)
		}
	}
}

func TestScaleLeavesCommDurationsUntouched(t *testing.T) {
	sys := hwDVSSystem(t, 100e-3)
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1], m[0][2] = 1, 1, 0
	before, err := sched.ListSchedule(sys, 0, m, sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	durations := make([]float64, len(before.Comms))
	for i := range before.Comms {
		durations[i] = before.Comms[i].Time
	}
	Scale(sys, before)
	for i := range before.Comms {
		if before.Comms[i].Time != durations[i] {
			t.Errorf("comm %d transfer time changed", i)
		}
		if got := before.Comms[i].Finish - before.Comms[i].Start; before.Comms[i].Time > 0 &&
			math.Abs(got-durations[i]) > 1e-12 {
			t.Errorf("comm %d interval stretched to %v", i, got)
		}
	}
}

// TestScaleSegmentDeadlineMidChain pins the subtle case of the Fig. 5
// transformation: a task finishing in an interior segment attaches its
// deadline there, so later segments may still stretch beyond it as long as
// tasks ending in them allow it.
func TestScaleSegmentDeadlineMidChain(t *testing.T) {
	b := model.NewBuilder("midchain")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{
		Name: "hw", Class: model.ASIC, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.8, 2.5, 3.3}, Area: 1000,
	})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e7}, "cpu", "hw")
	b.AddType("short",
		model.ImplSpec{PE: "hw", Time: 2e-3, Power: 1e-3, Area: 100},
		model.ImplSpec{PE: "cpu", Time: 20e-3, Power: 5e-3},
	)
	b.AddType("long",
		model.ImplSpec{PE: "hw", Time: 10e-3, Power: 2e-3, Area: 120},
		model.ImplSpec{PE: "cpu", Time: 100e-3, Power: 5e-3},
	)
	b.BeginMode("m", 1, 100e-3)
	// The short task has a tight 4 ms deadline; the long parallel task has
	// until the period.
	b.AddTask("s", "short", 4e-3)
	b.AddTask("l", "long", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1] = 1, 1
	sc, err := sched.ListSchedule(sys, 0, m, sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Scale(sys, sc) {
		t.Fatal("expected scaling")
	}
	if sc.Tasks[0].Finish > 4e-3+1e-9 {
		t.Errorf("short task misses its deadline after scaling: %v", sc.Tasks[0].Finish)
	}
	if late := sc.Lateness(sys); late > 1e-9 {
		t.Errorf("lateness %v", late)
	}
	// The long task should still have been slowed (it has ~90 ms of slack
	// after the shared first segment).
	if sc.Tasks[1].VoltIdx == len(sys.Arch.PEs[1].Levels)-1 {
		t.Error("long task not scaled despite slack")
	}
}
