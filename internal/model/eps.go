package model

import "math"

// ApproxEqual reports whether two floating-point quantities are equal up to
// a relative tolerance eps, with a tiny absolute guard so values that are
// both (numerically) zero compare equal at any eps. This is the single
// equality predicate for accumulated float quantities — energies, powers,
// schedule timestamps — where raw == would test "these code paths rounded
// identically" instead of the intended numeric statement.
func ApproxEqual(a, b, eps float64) bool {
	d := math.Abs(a - b)
	return d <= eps*math.Max(math.Abs(a), math.Abs(b))+1e-21
}
