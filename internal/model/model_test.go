package model

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// minimalSystem builds a small valid two-mode system used across tests.
func minimalSystem(t *testing.T) *System {
	t.Helper()
	b := NewBuilder("test")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(PE{Name: "asic", Class: ASIC, Vmax: 3.3, Vt: 0.8, Area: 500})
	b.AddCL(CL{Name: "bus", BytesPerSec: 1e6}, "cpu", "asic")
	b.AddType("a",
		ImplSpec{PE: "cpu", Time: 10e-3, Power: 1e-3},
		ImplSpec{PE: "asic", Time: 1e-3, Power: 0.1e-3, Area: 200},
	)
	b.AddType("b", ImplSpec{PE: "cpu", Time: 5e-3, Power: 2e-3})
	b.BeginMode("m0", 0.25, 0.1)
	b.AddTask("t0", "a", 0)
	b.AddTask("t1", "b", 0)
	b.AddEdge("t0", "t1", 100)
	b.BeginMode("m1", 0.75, 0.2)
	b.AddTask("t0", "a", 0.05)
	b.AddTransition("m0", "m1", 0.01)
	sys, err := b.Finish()
	if err != nil {
		t.Fatalf("minimal system: %v", err)
	}
	return sys
}

func TestPEClassPredicates(t *testing.T) {
	cases := []struct {
		c      PEClass
		hw, sw bool
		strc   string
	}{
		{GPP, false, true, "GPP"},
		{ASIP, false, true, "ASIP"},
		{ASIC, true, false, "ASIC"},
		{FPGA, true, false, "FPGA"},
	}
	for _, c := range cases {
		if c.c.IsHardware() != c.hw {
			t.Errorf("%v.IsHardware() = %v, want %v", c.c, c.c.IsHardware(), c.hw)
		}
		if c.c.IsSoftware() != c.sw {
			t.Errorf("%v.IsSoftware() = %v, want %v", c.c, c.c.IsSoftware(), c.sw)
		}
		if c.c.String() != c.strc {
			t.Errorf("%v.String() = %q, want %q", c.c, c.c.String(), c.strc)
		}
	}
	if got := PEClass(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestPEScalable(t *testing.T) {
	pe := &PE{DVS: false, Vmax: 3.3}
	if pe.Scalable() {
		t.Error("non-DVS PE must not be scalable")
	}
	pe = &PE{DVS: true, Vmax: 3.3, Levels: []float64{3.3}}
	if pe.Scalable() {
		t.Error("single-level DVS PE has no scaling freedom")
	}
	pe = &PE{DVS: true, Vmax: 3.3, Levels: []float64{1.8, 3.3}}
	if !pe.Scalable() {
		t.Error("multi-level DVS PE must be scalable")
	}
	if got := pe.MinVoltage(); got != 1.8 {
		t.Errorf("MinVoltage = %v, want 1.8", got)
	}
	pe = &PE{Vmax: 2.5}
	if got := pe.MinVoltage(); got != 2.5 {
		t.Errorf("non-DVS MinVoltage = %v, want Vmax", got)
	}
}

func TestCLConnects(t *testing.T) {
	cl := &CL{PEs: []PEID{0, 2}}
	if !cl.Connects(0, 2) || !cl.Connects(2, 0) {
		t.Error("CL must connect attached PEs in both directions")
	}
	if cl.Connects(0, 1) {
		t.Error("CL must not connect unattached PEs")
	}
	if !cl.Connects(0, 0) {
		t.Error("a PE is trivially connected to itself when attached")
	}
}

func TestArchLookups(t *testing.T) {
	sys := minimalSystem(t)
	a := sys.Arch
	if a.PE(0) == nil || a.PE(1) == nil {
		t.Fatal("PE lookup failed")
	}
	if a.PE(-1) != nil || a.PE(2) != nil {
		t.Error("out-of-range PE lookup must return nil")
	}
	if a.CL(0) == nil || a.CL(-1) != nil || a.CL(1) != nil {
		t.Error("CL lookup bounds broken")
	}
	links := a.LinksBetween(0, 1)
	if len(links) != 1 || links[0] != 0 {
		t.Errorf("LinksBetween(0,1) = %v, want [0]", links)
	}
	if got := a.LinksBetween(0, 0); got != nil {
		t.Errorf("LinksBetween(0,0) = %v, want nil", got)
	}
	if !a.Connected(0, 1) || !a.Connected(1, 1) {
		t.Error("connectivity broken")
	}
}

func TestLibraryLookups(t *testing.T) {
	sys := minimalSystem(t)
	l := sys.Lib
	if l.Type(0) == nil || l.Type(-1) != nil || l.Type(2) != nil {
		t.Error("type lookup bounds broken")
	}
	if l.TypeByName("a") == nil || l.TypeByName("zzz") != nil {
		t.Error("TypeByName broken")
	}
	tt := l.TypeByName("a")
	if im, ok := tt.ImplOn(1); !ok || im.Area != 200 {
		t.Errorf("ImplOn(asic) = %+v ok=%v", im, ok)
	}
	if _, ok := l.TypeByName("b").ImplOn(1); ok {
		t.Error("type b has no asic impl")
	}
	pes := tt.SupportedPEs()
	if len(pes) != 2 || pes[0] != 0 || pes[1] != 1 {
		t.Errorf("SupportedPEs = %v", pes)
	}
}

func TestImplEnergy(t *testing.T) {
	im := Impl{Time: 2e-3, Power: 5e-3}
	if got, want := im.Energy(), 1e-5; got != want {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func TestEffectiveDeadline(t *testing.T) {
	task := &Task{Deadline: 0}
	if got := task.EffectiveDeadline(0.2); got != 0.2 {
		t.Errorf("no deadline: got %v, want period", got)
	}
	task = &Task{Deadline: 0.05}
	if got := task.EffectiveDeadline(0.2); got != 0.05 {
		t.Errorf("tight deadline: got %v, want 0.05", got)
	}
	task = &Task{Deadline: 0.5}
	if got := task.EffectiveDeadline(0.2); got != 0.2 {
		t.Errorf("loose deadline: got %v, want period", got)
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := NewTaskGraph(
		[]*Task{{ID: 0}, {ID: 1}, {ID: 2}},
		[]*Edge{{ID: 0, Src: 1, Dst: 2}, {ID: 1, Src: 0, Dst: 1}},
	)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []TaskID{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := NewTaskGraph(
		[]*Task{{ID: 0}, {ID: 1}},
		[]*Edge{{ID: 0, Src: 0, Dst: 1}, {ID: 1, Src: 1, Dst: 0}},
	)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle must be detected")
	}
}

func TestTopoOrderDeterministicAmongReady(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3; among ready {1,2} the smaller ID first.
	g := NewTaskGraph(
		[]*Task{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}},
		[]*Edge{
			{ID: 0, Src: 0, Dst: 2},
			{ID: 1, Src: 0, Dst: 1},
			{ID: 2, Src: 2, Dst: 3},
			{ID: 3, Src: 1, Dst: 3},
		},
	)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2 3]", order)
	}
}

func TestGraphAdjacency(t *testing.T) {
	sys := minimalSystem(t)
	g := sys.App.Modes[0].Graph
	if len(g.Out(0)) != 1 || len(g.In(1)) != 1 || len(g.In(0)) != 0 {
		t.Error("adjacency wrong")
	}
	if g.Task(5) != nil || g.Edge(9) != nil {
		t.Error("out-of-range lookups must be nil")
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	sys := minimalSystem(t)
	if err := sys.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
}

func TestValidateRejectsBadProbabilities(t *testing.T) {
	sys := minimalSystem(t)
	sys.App.Modes[0].Prob = 0.5 // sum now 1.25
	if err := sys.Validate(); err == nil {
		t.Fatal("probability sum != 1 must be rejected")
	}
}

func TestValidateRejectsBadVoltages(t *testing.T) {
	sys := minimalSystem(t)
	sys.Arch.PEs[0].DVS = true
	sys.Arch.PEs[0].Levels = nil
	if err := sys.Validate(); err == nil {
		t.Fatal("DVS PE without levels must be rejected")
	}
	sys.Arch.PEs[0].Levels = []float64{3.3, 1.2}
	if err := sys.Validate(); err == nil {
		t.Fatal("unsorted levels must be rejected")
	}
	sys.Arch.PEs[0].Levels = []float64{1.2, 2.5}
	if err := sys.Validate(); err == nil {
		t.Fatal("top level != Vmax must be rejected")
	}
	sys.Arch.PEs[0].Levels = []float64{0.5, 3.3}
	if err := sys.Validate(); err == nil {
		t.Fatal("level below Vt must be rejected")
	}
}

func TestValidateRejectsHardwareWithoutArea(t *testing.T) {
	sys := minimalSystem(t)
	sys.Arch.PEs[1].Area = 0
	if err := sys.Validate(); err == nil {
		t.Fatal("hardware PE without area must be rejected")
	}
}

func TestValidateRejectsEmptyLibrary(t *testing.T) {
	sys := minimalSystem(t)
	sys.Lib.Types = nil
	if err := sys.Validate(); err == nil {
		t.Fatal("empty library must be rejected")
	}
}

func TestValidateRejectsBadTransition(t *testing.T) {
	sys := minimalSystem(t)
	sys.App.Transitions = append(sys.App.Transitions, Transition{From: 0, To: 0})
	if err := sys.Validate(); err == nil {
		t.Fatal("self-loop transition must be rejected")
	}
	sys.App.Transitions = []Transition{{From: 0, To: 7}}
	if err := sys.Validate(); err == nil {
		t.Fatal("transition to unknown mode must be rejected")
	}
}

func TestUniformProbabilities(t *testing.T) {
	sys := minimalSystem(t)
	uni := sys.App.UniformProbabilities()
	for _, m := range uni.Modes {
		if m.Prob != 0.5 {
			t.Errorf("mode %q prob = %v, want 0.5", m.Name, m.Prob)
		}
	}
	// Original is untouched.
	if sys.App.Modes[0].Prob != 0.25 {
		t.Error("UniformProbabilities mutated the original")
	}
	// Graphs are shared, not copied.
	if uni.Modes[0].Graph != sys.App.Modes[0].Graph {
		t.Error("graphs should be shared")
	}
	sys2 := sys.WithApp(uni)
	if sys2.Arch != sys.Arch || sys2.Lib != sys.Lib {
		t.Error("WithApp must share arch and lib")
	}
}

func TestTotals(t *testing.T) {
	sys := minimalSystem(t)
	if got := sys.App.TotalTasks(); got != 3 {
		t.Errorf("TotalTasks = %d, want 3", got)
	}
	if got := sys.App.TotalEdges(); got != 1 {
		t.Errorf("TotalEdges = %d, want 1", got)
	}
}

func TestCandidatePEs(t *testing.T) {
	sys := minimalSystem(t)
	if got := sys.CandidatePEs(0); len(got) != 2 {
		t.Errorf("type a candidates = %v", got)
	}
	if got := sys.CandidatePEs(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("type b candidates = %v", got)
	}
	if got := sys.CandidatePEs(42); got != nil {
		t.Errorf("unknown type candidates = %v", got)
	}
}

func TestMappingHelpers(t *testing.T) {
	sys := minimalSystem(t)
	m := NewMapping(sys.App)
	if m[0][0] != NoPE {
		t.Fatal("fresh mapping must be unassigned")
	}
	m[0][0], m[0][1], m[1][0] = 1, 0, 0
	if err := m.Validate(sys); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	cl := m.Clone()
	cl[0][0] = 0
	if m[0][0] != 1 {
		t.Error("Clone must be deep")
	}
	if m.Equal(cl) {
		t.Error("different mappings reported equal")
	}
	cl[0][0] = 1
	if !m.Equal(cl) {
		t.Error("equal mappings reported different")
	}
	if got := m.TasksOn(sys.App, 0, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("TasksOn(cpu) = %v", got)
	}
	if !m.UsesPE(0, 1) || m.UsesPE(1, 1) {
		t.Error("UsesPE wrong")
	}
	if got := m.PE(0, 0); got != 1 {
		t.Errorf("PE(0,0) = %v", got)
	}
}

func TestMappingValidateRejectsTypeMismatch(t *testing.T) {
	sys := minimalSystem(t)
	m := NewMapping(sys.App)
	m[0][0], m[0][1], m[1][0] = 0, 1, 0 // t1 (type b) on asic: no impl
	if err := m.Validate(sys); err == nil {
		t.Fatal("type without impl on PE must be rejected")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3}) // duplicate
	if _, err := b.Finish(); err == nil {
		t.Fatal("duplicate PE must fail")
	}

	b = NewBuilder("bad2")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	b.AddType("a", ImplSpec{PE: "nope", Time: 1, Power: 1})
	if _, err := b.Finish(); err == nil {
		t.Fatal("impl on unknown PE must fail")
	}

	b = NewBuilder("bad3")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	b.AddType("a", ImplSpec{PE: "cpu", Time: 1, Power: 1})
	b.AddTask("orphan", "a", 0) // before BeginMode
	if _, err := b.Finish(); err == nil {
		t.Fatal("task before BeginMode must fail")
	}

	b = NewBuilder("bad4")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	b.AddType("a", ImplSpec{PE: "cpu", Time: 1, Power: 1})
	b.BeginMode("m", 1, 1)
	b.AddTask("t", "a", 0)
	b.AddEdge("t", "missing", 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("edge to unknown task must fail")
	}

	b = NewBuilder("bad5")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	b.AddType("a", ImplSpec{PE: "cpu", Time: 1, Power: 1})
	b.BeginMode("m", 1, 1)
	b.AddTask("t", "zzz", 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("task of unknown type must fail")
	}

	b = NewBuilder("bad6")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	b.AddCL(CL{Name: "bus", BytesPerSec: 1}, "ghost")
	if _, err := b.Finish(); err == nil {
		t.Fatal("CL attaching unknown PE must fail")
	}

	b = NewBuilder("bad7")
	b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	b.AddType("a", ImplSpec{PE: "cpu", Time: 1, Power: 1})
	b.AddTransition("x", "y", 0)
	if _, err := b.Finish(); err == nil {
		t.Fatal("transition between unknown modes must fail")
	}
}

func TestBuilderPEByName(t *testing.T) {
	b := NewBuilder("x")
	id := b.AddPE(PE{Name: "cpu", Class: GPP, Vmax: 3.3})
	if got := b.PEByName("cpu"); got != id {
		t.Errorf("PEByName = %v, want %v", got, id)
	}
	if got := b.PEByName("ghost"); got != NoPE {
		t.Errorf("unknown PEByName = %v, want NoPE", got)
	}
}

// TestQuickTopoOrderOnRandomDAGs draws random forward-edge DAGs and checks
// that the topological order is a valid linearisation covering every task.
func TestQuickTopoOrderOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		tasks := make([]*Task, n)
		for i := range tasks {
			tasks[i] = &Task{ID: TaskID(i)}
		}
		var edges []*Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					edges = append(edges, &Edge{ID: EdgeID(len(edges)), Src: TaskID(i), Dst: TaskID(j)})
				}
			}
		}
		g := NewTaskGraph(tasks, edges)
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make([]int, n)
		for i, tid := range order {
			pos[tid] = i
		}
		for _, e := range edges {
			if pos[e.Src] >= pos[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickTopoOrderRejectsRandomCycles plants one back edge into a random
// chain and expects detection.
func TestQuickTopoOrderRejectsRandomCycles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		tasks := make([]*Task, n)
		for i := range tasks {
			tasks[i] = &Task{ID: TaskID(i)}
		}
		var edges []*Edge
		for i := 0; i+1 < n; i++ {
			edges = append(edges, &Edge{ID: EdgeID(len(edges)), Src: TaskID(i), Dst: TaskID(i + 1)})
		}
		// Back edge from a later to an earlier node closes a cycle.
		hi := 1 + rng.Intn(n-1)
		lo := rng.Intn(hi)
		edges = append(edges, &Edge{ID: EdgeID(len(edges)), Src: TaskID(hi), Dst: TaskID(lo)})
		g := NewTaskGraph(tasks, edges)
		_, err := g.TopoOrder()
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
