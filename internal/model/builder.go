package model

import "fmt"

// Builder assembles a System incrementally with automatic ID assignment and
// name-based cross referencing. It is the programmatic counterpart of the
// specio text format and is used by examples, benchmarks and the random
// generator.
type Builder struct {
	sys     *System
	types   map[string]TaskTypeID
	pes     map[string]PEID
	cls     map[string]CLID
	modes   map[string]ModeID
	curMode *modeDraft
	drafts  []*modeDraft
	errs    []error
}

type modeDraft struct {
	mode  *Mode
	tasks map[string]TaskID
	nodes []*Task
	edges []*Edge
}

// NewBuilder returns an empty builder for a system with the given
// application name.
func NewBuilder(name string) *Builder {
	return &Builder{
		sys: &System{
			App:  &OMSM{Name: name},
			Arch: &Arch{},
			Lib:  &Library{},
		},
		types: make(map[string]TaskTypeID),
		pes:   make(map[string]PEID),
		cls:   make(map[string]CLID),
		modes: make(map[string]ModeID),
	}
}

func (b *Builder) errf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// AddPE appends a processing element. The PE's ID is assigned by the
// builder; any ID already present in pe is overwritten.
func (b *Builder) AddPE(pe PE) PEID {
	if _, dup := b.pes[pe.Name]; dup {
		b.errf("builder: duplicate PE name %q", pe.Name)
	}
	id := PEID(len(b.sys.Arch.PEs))
	pe.ID = id
	b.sys.Arch.PEs = append(b.sys.Arch.PEs, &pe)
	b.pes[pe.Name] = id
	return id
}

// AddCL appends a communication link attaching the named PEs.
func (b *Builder) AddCL(cl CL, peNames ...string) CLID {
	if _, dup := b.cls[cl.Name]; dup {
		b.errf("builder: duplicate CL name %q", cl.Name)
	}
	id := CLID(len(b.sys.Arch.CLs))
	cl.ID = id
	for _, n := range peNames {
		pid, ok := b.pes[n]
		if !ok {
			b.errf("builder: CL %q attaches unknown PE %q", cl.Name, n)
			continue
		}
		cl.PEs = append(cl.PEs, pid)
	}
	b.sys.Arch.CLs = append(b.sys.Arch.CLs, &cl)
	b.cls[cl.Name] = id
	return id
}

// PEByName returns the ID of the named PE; it records an error and returns
// NoPE when absent.
func (b *Builder) PEByName(name string) PEID {
	id, ok := b.pes[name]
	if !ok {
		b.errf("builder: unknown PE %q", name)
		return NoPE
	}
	return id
}

// AddType declares a task type with its implementation alternatives given
// as (peName, impl) pairs via ImplSpec.
func (b *Builder) AddType(name string, impls ...ImplSpec) TaskTypeID {
	if _, dup := b.types[name]; dup {
		b.errf("builder: duplicate task type %q", name)
	}
	id := TaskTypeID(len(b.sys.Lib.Types))
	tt := &TaskType{ID: id, Name: name}
	for _, is := range impls {
		pid, ok := b.pes[is.PE]
		if !ok {
			b.errf("builder: type %q implementation on unknown PE %q", name, is.PE)
			continue
		}
		tt.Impls = append(tt.Impls, Impl{PE: pid, Time: is.Time, Power: is.Power, Area: is.Area})
	}
	b.sys.Lib.Types = append(b.sys.Lib.Types, tt)
	b.types[name] = id
	return id
}

// ImplSpec names an implementation alternative for Builder.AddType.
type ImplSpec struct {
	PE    string
	Time  float64
	Power float64
	Area  int
}

// BeginMode starts a new operational mode; subsequent AddTask/AddEdge calls
// populate it until the next BeginMode or Finish.
func (b *Builder) BeginMode(name string, prob, period float64) ModeID {
	if _, dup := b.modes[name]; dup {
		b.errf("builder: duplicate mode name %q", name)
	}
	id := ModeID(len(b.drafts))
	d := &modeDraft{
		mode:  &Mode{ID: id, Name: name, Prob: prob, Period: period},
		tasks: make(map[string]TaskID),
	}
	b.drafts = append(b.drafts, d)
	b.modes[name] = id
	b.curMode = d
	return id
}

// AddTask appends a task of the named type to the current mode. A deadline
// of zero means only the mode period constrains the task.
func (b *Builder) AddTask(name, typeName string, deadline float64) TaskID {
	if b.curMode == nil {
		b.errf("builder: AddTask %q before BeginMode", name)
		return -1
	}
	if _, dup := b.curMode.tasks[name]; dup {
		b.errf("builder: duplicate task %q in mode %q", name, b.curMode.mode.Name)
	}
	tt, ok := b.types[typeName]
	if !ok {
		b.errf("builder: task %q uses unknown type %q", name, typeName)
		return -1
	}
	id := TaskID(len(b.curMode.nodes))
	b.curMode.nodes = append(b.curMode.nodes, &Task{ID: id, Name: name, Type: tt, Deadline: deadline})
	b.curMode.tasks[name] = id
	return id
}

// AddEdge appends a data dependency between two named tasks of the current
// mode.
func (b *Builder) AddEdge(src, dst string, bytes float64) EdgeID {
	if b.curMode == nil {
		b.errf("builder: AddEdge %q->%q before BeginMode", src, dst)
		return -1
	}
	s, okS := b.curMode.tasks[src]
	d, okD := b.curMode.tasks[dst]
	if !okS || !okD {
		b.errf("builder: edge %q->%q references unknown task in mode %q", src, dst, b.curMode.mode.Name)
		return -1
	}
	id := EdgeID(len(b.curMode.edges))
	b.curMode.edges = append(b.curMode.edges, &Edge{ID: id, Src: s, Dst: d, Bytes: bytes})
	return id
}

// AddTransition declares a mode transition by mode names.
func (b *Builder) AddTransition(from, to string, maxTime float64) {
	f, okF := b.modes[from]
	t, okT := b.modes[to]
	if !okF || !okT {
		b.errf("builder: transition %q->%q references unknown mode", from, to)
		return
	}
	b.sys.App.Transitions = append(b.sys.App.Transitions, Transition{From: f, To: t, MaxTime: maxTime})
}

// Finish assembles and validates the system. The builder must not be used
// afterwards.
func (b *Builder) Finish() (*System, error) {
	for _, d := range b.drafts {
		d.mode.Graph = NewTaskGraph(d.nodes, d.edges)
		b.sys.App.Modes = append(b.sys.App.Modes, d.mode)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.sys.Validate(); err != nil {
		return nil, err
	}
	return b.sys, nil
}
