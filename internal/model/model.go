// Package model defines the specification and architectural model for
// multi-mode embedded systems as used by the co-synthesis flow: the
// operational mode state machine (OMSM) combining a top-level finite state
// machine with per-mode task graphs, the distributed heterogeneous target
// architecture (processing elements and communication links), and the
// technology library mapping task types to implementation alternatives.
//
// The model follows Schmitz, Al-Hashimi, Eles: "A Co-Design Methodology for
// Energy-Efficient Multi-Mode Embedded Systems with Consideration of Mode
// Execution Probabilities", DATE 2003. All times are in seconds, powers in
// watts, energies in joules, and hardware areas in abstract cells.
package model

import (
	"fmt"
	"math"
	"sort"
)

// Identifier types. All identifiers are dense indices into the owning
// container, so they double as slice indices.
type (
	// TaskTypeID indexes Library.Types.
	TaskTypeID int
	// TaskID indexes TaskGraph.Tasks within one mode.
	TaskID int
	// EdgeID indexes TaskGraph.Edges within one mode.
	EdgeID int
	// ModeID indexes OMSM.Modes.
	ModeID int
	// PEID indexes Arch.PEs.
	PEID int
	// CLID indexes Arch.CLs.
	CLID int
)

// NoPE is the sentinel for "not mapped to any processing element".
const NoPE PEID = -1

// NoCL is the sentinel for "no communication link" (intra-PE communication).
const NoCL CLID = -1

// PEClass enumerates the kinds of processing elements supported by the
// architectural model.
type PEClass int

const (
	// GPP is a general-purpose (software) processor.
	GPP PEClass = iota
	// ASIP is an application-specific instruction-set (software) processor.
	ASIP
	// ASIC is a non-reconfigurable hardware component; allocated cores are
	// static for the lifetime of the system.
	ASIC
	// FPGA is a reconfigurable hardware component; its core set may be
	// exchanged during a mode transition at a reconfiguration time cost.
	FPGA
)

// String returns the conventional abbreviation of the PE class.
func (c PEClass) String() string {
	switch c {
	case GPP:
		return "GPP"
	case ASIP:
		return "ASIP"
	case ASIC:
		return "ASIC"
	case FPGA:
		return "FPGA"
	default:
		return fmt.Sprintf("PEClass(%d)", int(c))
	}
}

// IsHardware reports whether tasks mapped to a PE of this class execute on
// allocated cores (in parallel, resource permitting) rather than being
// sequentialised by a processor.
func (c PEClass) IsHardware() bool { return c == ASIC || c == FPGA }

// IsSoftware reports whether a PE of this class executes tasks sequentially
// under processor control.
func (c PEClass) IsSoftware() bool { return c == GPP || c == ASIP }

// PE describes one processing element of the target architecture.
type PE struct {
	ID    PEID
	Name  string
	Class PEClass

	// DVS indicates that the component supports dynamic voltage scaling.
	// Hardware PEs with DVS feed all of their cores from a single scalable
	// supply (paper section 4.2).
	DVS bool
	// Vmax is the nominal supply voltage (volts). Technology-library
	// execution times and powers are specified at Vmax.
	Vmax float64
	// Vt is the threshold voltage used by the alpha-power delay model.
	Vt float64
	// Levels is the ascending set of admissible discrete supply voltages.
	// It must contain Vmax as its maximum. Ignored unless DVS is set.
	Levels []float64

	// Area is the available silicon area in cells (hardware PEs only).
	Area int
	// StaticPower is dissipated whenever the component is powered in a mode.
	StaticPower float64
	// ReconfigTime is the time to (re)configure one core (FPGA only).
	ReconfigTime float64
}

// Scalable reports whether the PE both supports DVS and offers more than a
// single voltage level, i.e. whether voltage selection has any freedom.
func (p *PE) Scalable() bool { return p.DVS && len(p.Levels) > 1 }

// MinVoltage returns the lowest admissible supply voltage of the PE. For
// non-DVS PEs this is Vmax.
func (p *PE) MinVoltage() float64 {
	if !p.DVS || len(p.Levels) == 0 {
		return p.Vmax
	}
	return p.Levels[0]
}

// CL describes one communication link (e.g. a bus) of the architecture.
type CL struct {
	ID   CLID
	Name string

	// BytesPerSec is the raw transfer bandwidth.
	BytesPerSec float64
	// PowerActive is the dynamic power drawn while a message is in flight.
	PowerActive float64
	// StaticPower is dissipated whenever the link is powered in a mode.
	StaticPower float64
	// PEs lists the processing elements attached to this link.
	PEs []PEID
}

// Connects reports whether both PEs are attached to the link.
func (c *CL) Connects(a, b PEID) bool {
	var hasA, hasB bool
	for _, p := range c.PEs {
		if p == a {
			hasA = true
		}
		if p == b {
			hasB = true
		}
	}
	return hasA && hasB
}

// Arch is the allocated target architecture: a set of heterogeneous PEs
// connected by communication links.
type Arch struct {
	PEs []*PE
	CLs []*CL
}

// PE returns the processing element with the given ID, or nil when out of
// range.
func (a *Arch) PE(id PEID) *PE {
	if id < 0 || int(id) >= len(a.PEs) {
		return nil
	}
	return a.PEs[id]
}

// CL returns the communication link with the given ID, or nil when out of
// range.
func (a *Arch) CL(id CLID) *CL {
	if id < 0 || int(id) >= len(a.CLs) {
		return nil
	}
	return a.CLs[id]
}

// LinksBetween returns all CLs connecting the two PEs. The result is empty
// when src == dst (no link needed) or when the PEs are unconnected.
func (a *Arch) LinksBetween(src, dst PEID) []CLID {
	if src == dst {
		return nil
	}
	var out []CLID
	for _, cl := range a.CLs {
		if cl.Connects(src, dst) {
			out = append(out, cl.ID)
		}
	}
	return out
}

// Connected reports whether the two PEs share at least one link, or are the
// same PE.
func (a *Arch) Connected(src, dst PEID) bool {
	return src == dst || len(a.LinksBetween(src, dst)) > 0
}

// Impl is one implementation alternative of a task type on a particular PE.
type Impl struct {
	PE PEID
	// Time is the worst-case execution time at the PE's nominal voltage.
	Time float64
	// Power is the dynamic power dissipation at nominal voltage, so the
	// per-execution dynamic energy at Vmax is Power*Time.
	Power float64
	// Area is the silicon area of the core in cells (hardware PEs only).
	Area int
}

// Energy returns the nominal-voltage dynamic energy of one execution.
func (im Impl) Energy() float64 { return im.Power * im.Time }

// TaskType is an atomic unit of functionality (FFT, IDCT, Huffman decoder,
// ...). Tasks of the same type found in different modes may share a hardware
// core.
type TaskType struct {
	ID    TaskTypeID
	Name  string
	Impls []Impl
}

// ImplOn returns the implementation alternative of the type on the given PE
// and whether one exists.
func (t *TaskType) ImplOn(pe PEID) (Impl, bool) {
	for _, im := range t.Impls {
		if im.PE == pe {
			return im, true
		}
	}
	return Impl{}, false
}

// SupportedPEs returns the PEs on which the type has an implementation, in
// library order.
func (t *TaskType) SupportedPEs() []PEID {
	out := make([]PEID, 0, len(t.Impls))
	for _, im := range t.Impls {
		out = append(out, im.PE)
	}
	return out
}

// Library is the technology library: the set of all task types together
// with their implementation alternatives.
type Library struct {
	Types []*TaskType
}

// Type returns the task type with the given ID, or nil when out of range.
func (l *Library) Type(id TaskTypeID) *TaskType {
	if id < 0 || int(id) >= len(l.Types) {
		return nil
	}
	return l.Types[id]
}

// TypeByName returns the task type with the given name, or nil.
func (l *Library) TypeByName(name string) *TaskType {
	for _, t := range l.Types {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Task is one node of a mode's task graph.
type Task struct {
	ID   TaskID
	Name string
	Type TaskTypeID
	// Deadline is the latest allowed finish time relative to the task-graph
	// activation; zero means "no individual deadline" (only the mode period
	// applies).
	Deadline float64
}

// EffectiveDeadline returns min(deadline, period) per the paper's timing
// constraint tS+texe <= min(θτ, φ).
func (t *Task) EffectiveDeadline(period float64) float64 {
	if t.Deadline > 0 && t.Deadline < period {
		return t.Deadline
	}
	return period
}

// Edge is a directed data dependency between two tasks of the same mode.
type Edge struct {
	ID    EdgeID
	Src   TaskID
	Dst   TaskID
	Bytes float64
}

// TaskGraph is the functional specification of a single operational mode: a
// DAG of tasks with data-dependency edges.
type TaskGraph struct {
	Tasks []*Task
	Edges []*Edge

	succ [][]EdgeID
	pred [][]EdgeID
}

// NewTaskGraph builds a task graph and its adjacency indexes. It does not
// validate acyclicity; use Validate.
func NewTaskGraph(tasks []*Task, edges []*Edge) *TaskGraph {
	g := &TaskGraph{Tasks: tasks, Edges: edges}
	g.reindex()
	return g
}

func (g *TaskGraph) reindex() {
	g.succ = make([][]EdgeID, len(g.Tasks))
	g.pred = make([][]EdgeID, len(g.Tasks))
	for _, e := range g.Edges {
		g.succ[e.Src] = append(g.succ[e.Src], e.ID)
		g.pred[e.Dst] = append(g.pred[e.Dst], e.ID)
	}
}

// Task returns the task with the given ID, or nil when out of range.
func (g *TaskGraph) Task(id TaskID) *Task {
	if id < 0 || int(id) >= len(g.Tasks) {
		return nil
	}
	return g.Tasks[id]
}

// Edge returns the edge with the given ID, or nil when out of range.
func (g *TaskGraph) Edge(id EdgeID) *Edge {
	if id < 0 || int(id) >= len(g.Edges) {
		return nil
	}
	return g.Edges[id]
}

// Out returns the IDs of edges leaving the task.
func (g *TaskGraph) Out(t TaskID) []EdgeID { return g.succ[t] }

// In returns the IDs of edges entering the task.
func (g *TaskGraph) In(t TaskID) []EdgeID { return g.pred[t] }

// TopoOrder returns the task IDs in a topological order, or an error if the
// graph contains a cycle. The order is deterministic: among ready tasks the
// smallest ID goes first.
func (g *TaskGraph) TopoOrder() ([]TaskID, error) {
	n := len(g.Tasks)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.Dst]++
	}
	ready := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(ready) > 0 {
		// Deterministic: pop the smallest ID.
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		t := ready[0]
		ready = ready[1:]
		order = append(order, t)
		for _, eid := range g.succ[t] {
			d := g.Edges[eid].Dst
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("model: task graph contains a cycle (%d of %d tasks ordered)", len(order), n)
	}
	return order, nil
}

// Mode is one operational mode: a task graph annotated with its execution
// probability and repetition period (hyper-period).
type Mode struct {
	ID    ModeID
	Name  string
	Graph *TaskGraph
	// Prob is the mode execution probability Ψ: the fraction of operational
	// time the system spends in this mode. Probabilities over all modes of
	// an OMSM sum to one.
	Prob float64
	// Period is the repetition period φ of the mode's task graph, which also
	// serves as the hyper-period for average-power computation.
	Period float64
}

// Transition is a directed edge of the top-level finite state machine.
type Transition struct {
	From ModeID
	To   ModeID
	// MaxTime is the maximal allowed transition (reconfiguration) time
	// tTmax; zero means unconstrained.
	MaxTime float64
}

// OMSM is the operational mode state machine: the top-level cyclic FSM over
// operational modes plus per-mode task graphs.
type OMSM struct {
	Name        string
	Modes       []*Mode
	Transitions []Transition
}

// Mode returns the mode with the given ID, or nil when out of range.
func (o *OMSM) Mode(id ModeID) *Mode {
	if id < 0 || int(id) >= len(o.Modes) {
		return nil
	}
	return o.Modes[id]
}

// ReachableFrom returns, per mode, whether the mode can be reached from
// start by following the declared transitions (start itself is reachable).
// An operational mode the state machine can never enter is almost always a
// specification mistake; specio rejects it at parse time.
func (o *OMSM) ReachableFrom(start ModeID) []bool {
	seen := make([]bool, len(o.Modes))
	if start < 0 || int(start) >= len(o.Modes) {
		return seen
	}
	queue := []ModeID{start}
	seen[start] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, tr := range o.Transitions {
			if tr.From == cur && !seen[tr.To] {
				seen[tr.To] = true
				queue = append(queue, tr.To)
			}
		}
	}
	return seen
}

// ModeByName returns the mode with the given name, or nil.
func (o *OMSM) ModeByName(name string) *Mode {
	for _, m := range o.Modes {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// System bundles a complete co-synthesis problem instance: the application
// (OMSM), the allocated architecture, and the technology library.
type System struct {
	App  *OMSM
	Arch *Arch
	Lib  *Library
}

// CandidatePEs returns the PEs onto which the given task type can be mapped,
// i.e. those with an implementation alternative in the library.
func (s *System) CandidatePEs(tt TaskTypeID) []PEID {
	t := s.Lib.Type(tt)
	if t == nil {
		return nil
	}
	return t.SupportedPEs()
}

// Validate checks structural consistency of the complete system
// specification and returns a descriptive error for the first violation
// found.
func (s *System) Validate() error {
	if s.App == nil || s.Arch == nil || s.Lib == nil {
		return fmt.Errorf("model: system must have app, arch and lib")
	}
	if err := s.validateArch(); err != nil {
		return err
	}
	if err := s.validateLib(); err != nil {
		return err
	}
	return s.validateApp()
}

func (s *System) validateArch() error {
	if len(s.Arch.PEs) == 0 {
		return fmt.Errorf("model: architecture has no PEs")
	}
	for i, pe := range s.Arch.PEs {
		if pe.ID != PEID(i) {
			return fmt.Errorf("model: PE %q has ID %d, want %d", pe.Name, pe.ID, i)
		}
		if pe.Class.IsHardware() && pe.Area <= 0 {
			return fmt.Errorf("model: hardware PE %q has non-positive area %d", pe.Name, pe.Area)
		}
		if pe.DVS {
			if len(pe.Levels) == 0 {
				return fmt.Errorf("model: DVS PE %q has no voltage levels", pe.Name)
			}
			if !sort.Float64sAreSorted(pe.Levels) {
				return fmt.Errorf("model: DVS PE %q voltage levels not ascending", pe.Name)
			}
			top := pe.Levels[len(pe.Levels)-1]
			if math.Abs(top-pe.Vmax) > 1e-9 {
				return fmt.Errorf("model: DVS PE %q max level %g != Vmax %g", pe.Name, top, pe.Vmax)
			}
			if pe.Levels[0] <= pe.Vt {
				return fmt.Errorf("model: DVS PE %q lowest level %g not above Vt %g", pe.Name, pe.Levels[0], pe.Vt)
			}
		}
		if pe.StaticPower < 0 {
			return fmt.Errorf("model: PE %q has negative static power", pe.Name)
		}
	}
	for i, cl := range s.Arch.CLs {
		if cl.ID != CLID(i) {
			return fmt.Errorf("model: CL %q has ID %d, want %d", cl.Name, cl.ID, i)
		}
		if cl.BytesPerSec <= 0 {
			return fmt.Errorf("model: CL %q has non-positive bandwidth", cl.Name)
		}
		for _, p := range cl.PEs {
			if s.Arch.PE(p) == nil {
				return fmt.Errorf("model: CL %q attaches unknown PE %d", cl.Name, p)
			}
		}
	}
	return nil
}

func (s *System) validateLib() error {
	if len(s.Lib.Types) == 0 {
		return fmt.Errorf("model: technology library is empty")
	}
	for i, tt := range s.Lib.Types {
		if tt.ID != TaskTypeID(i) {
			return fmt.Errorf("model: task type %q has ID %d, want %d", tt.Name, tt.ID, i)
		}
		if len(tt.Impls) == 0 {
			return fmt.Errorf("model: task type %q has no implementation alternative", tt.Name)
		}
		seen := make(map[PEID]bool)
		for _, im := range tt.Impls {
			pe := s.Arch.PE(im.PE)
			if pe == nil {
				return fmt.Errorf("model: task type %q has impl on unknown PE %d", tt.Name, im.PE)
			}
			if seen[im.PE] {
				return fmt.Errorf("model: task type %q has duplicate impl on PE %q", tt.Name, pe.Name)
			}
			seen[im.PE] = true
			if im.Time <= 0 {
				return fmt.Errorf("model: task type %q impl on %q has non-positive time", tt.Name, pe.Name)
			}
			if im.Power < 0 {
				return fmt.Errorf("model: task type %q impl on %q has negative power", tt.Name, pe.Name)
			}
			if pe.Class.IsHardware() && im.Area <= 0 {
				return fmt.Errorf("model: task type %q impl on hardware %q needs positive core area", tt.Name, pe.Name)
			}
		}
	}
	return nil
}

func (s *System) validateApp() error {
	if len(s.App.Modes) == 0 {
		return fmt.Errorf("model: OMSM has no modes")
	}
	probSum := 0.0
	for i, m := range s.App.Modes {
		if m.ID != ModeID(i) {
			return fmt.Errorf("model: mode %q has ID %d, want %d", m.Name, m.ID, i)
		}
		if m.Prob < 0 || m.Prob > 1 {
			return fmt.Errorf("model: mode %q has probability %g outside [0,1]", m.Name, m.Prob)
		}
		probSum += m.Prob
		if m.Period <= 0 {
			return fmt.Errorf("model: mode %q has non-positive period", m.Name)
		}
		if m.Graph == nil || len(m.Graph.Tasks) == 0 {
			return fmt.Errorf("model: mode %q has no tasks", m.Name)
		}
		for j, t := range m.Graph.Tasks {
			if t.ID != TaskID(j) {
				return fmt.Errorf("model: mode %q task %q has ID %d, want %d", m.Name, t.Name, t.ID, j)
			}
			if s.Lib.Type(t.Type) == nil {
				return fmt.Errorf("model: mode %q task %q references unknown type %d", m.Name, t.Name, t.Type)
			}
			if t.Deadline < 0 {
				return fmt.Errorf("model: mode %q task %q has negative deadline", m.Name, t.Name)
			}
		}
		for j, e := range m.Graph.Edges {
			if e.ID != EdgeID(j) {
				return fmt.Errorf("model: mode %q edge %d has ID %d, want %d", m.Name, j, e.ID, j)
			}
			if m.Graph.Task(e.Src) == nil || m.Graph.Task(e.Dst) == nil {
				return fmt.Errorf("model: mode %q edge %d references unknown task", m.Name, j)
			}
			if e.Src == e.Dst {
				return fmt.Errorf("model: mode %q edge %d is a self loop", m.Name, j)
			}
			if e.Bytes < 0 {
				return fmt.Errorf("model: mode %q edge %d has negative size", m.Name, j)
			}
		}
		if _, err := m.Graph.TopoOrder(); err != nil {
			return fmt.Errorf("model: mode %q: %v", m.Name, err)
		}
	}
	if math.Abs(probSum-1) > 1e-6 {
		return fmt.Errorf("model: mode probabilities sum to %g, want 1", probSum)
	}
	for _, tr := range s.App.Transitions {
		if s.App.Mode(tr.From) == nil || s.App.Mode(tr.To) == nil {
			return fmt.Errorf("model: transition references unknown mode (%d->%d)", tr.From, tr.To)
		}
		if tr.From == tr.To {
			return fmt.Errorf("model: transition %d->%d is a self loop", tr.From, tr.To)
		}
		if tr.MaxTime < 0 {
			return fmt.Errorf("model: transition %d->%d has negative time limit", tr.From, tr.To)
		}
	}
	return nil
}

// UniformProbabilities returns a copy of the OMSM in which every mode has
// execution probability 1/|modes|. Task graphs, periods and transitions are
// shared with the receiver (they are not mutated by synthesis). This is the
// specification seen by the probability-neglecting baseline.
func (o *OMSM) UniformProbabilities() *OMSM {
	modes := make([]*Mode, len(o.Modes))
	for i, m := range o.Modes {
		cp := *m
		cp.Prob = 1 / float64(len(o.Modes))
		modes[i] = &cp
	}
	return &OMSM{Name: o.Name, Modes: modes, Transitions: o.Transitions}
}

// WithApp returns a shallow copy of the system using the given application.
func (s *System) WithApp(app *OMSM) *System {
	return &System{App: app, Arch: s.Arch, Lib: s.Lib}
}

// TotalTasks returns the number of tasks summed over all modes.
func (o *OMSM) TotalTasks() int {
	n := 0
	for _, m := range o.Modes {
		n += len(m.Graph.Tasks)
	}
	return n
}

// TotalEdges returns the number of edges summed over all modes.
func (o *OMSM) TotalEdges() int {
	n := 0
	for _, m := range o.Modes {
		n += len(m.Graph.Edges)
	}
	return n
}
