package model

import "fmt"

// Mapping is a multi-mode task mapping Mτ: for every operational mode and
// every task of that mode, the processing element the task executes on.
// Indexed as Mapping[mode][task]. It is the genome phenotype of the outer
// genetic optimisation loop ("multi-mode mapping string", paper Fig. 2).
type Mapping [][]PEID

// NewMapping allocates an unassigned mapping (all NoPE) shaped like the
// application's modes.
func NewMapping(app *OMSM) Mapping {
	m := make(Mapping, len(app.Modes))
	for i, mode := range app.Modes {
		row := make([]PEID, len(mode.Graph.Tasks))
		for j := range row {
			row[j] = NoPE
		}
		m[i] = row
	}
	return m
}

// Clone returns a deep copy of the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	for i, row := range m {
		out[i] = append([]PEID(nil), row...)
	}
	return out
}

// Equal reports whether two mappings assign every task identically.
func (m Mapping) Equal(o Mapping) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if len(m[i]) != len(o[i]) {
			return false
		}
		for j := range m[i] {
			if m[i][j] != o[i][j] {
				return false
			}
		}
	}
	return true
}

// PE returns the PE the task of the mode is mapped to.
func (m Mapping) PE(mode ModeID, task TaskID) PEID { return m[mode][task] }

// Validate checks that every task is mapped to a PE that has an
// implementation for the task's type.
func (m Mapping) Validate(s *System) error {
	if len(m) != len(s.App.Modes) {
		return fmt.Errorf("model: mapping covers %d modes, app has %d", len(m), len(s.App.Modes))
	}
	for mi, mode := range s.App.Modes {
		if len(m[mi]) != len(mode.Graph.Tasks) {
			return fmt.Errorf("model: mapping mode %q covers %d tasks, graph has %d",
				mode.Name, len(m[mi]), len(mode.Graph.Tasks))
		}
		for ti, task := range mode.Graph.Tasks {
			pe := m[mi][ti]
			if s.Arch.PE(pe) == nil {
				return fmt.Errorf("model: mode %q task %q mapped to unknown PE %d", mode.Name, task.Name, pe)
			}
			if _, ok := s.Lib.Type(task.Type).ImplOn(pe); !ok {
				return fmt.Errorf("model: mode %q task %q type %q has no impl on PE %q",
					mode.Name, task.Name, s.Lib.Type(task.Type).Name, s.Arch.PE(pe).Name)
			}
		}
	}
	return nil
}

// TasksOn returns the IDs of the mode's tasks mapped to the given PE, in
// task order.
func (m Mapping) TasksOn(app *OMSM, mode ModeID, pe PEID) []TaskID {
	var out []TaskID
	for ti := range app.Modes[mode].Graph.Tasks {
		if m[mode][ti] == pe {
			out = append(out, TaskID(ti))
		}
	}
	return out
}

// UsesPE reports whether any task of the mode is mapped to the PE. A PE that
// is unused in a mode can be shut down during that mode.
func (m Mapping) UsesPE(mode ModeID, pe PEID) bool {
	for _, p := range m[mode] {
		if p == pe {
			return true
		}
	}
	return false
}
