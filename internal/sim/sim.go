// Package sim is a discrete-event execution simulator for synthesised
// multi-mode implementations. It plays a usage trace — a sequence of
// operational modes with dwell times, generated from the OMSM's transition
// structure — against an implementation's per-mode schedules, accumulating
// dynamic and static energy hyper-period by hyper-period, including mode
// transition overheads (FPGA reconfiguration) and component shut-down.
//
// The simulator grounds the paper's analytical objective: the long-run
// average power measured over a trace whose empirical mode residencies
// match the specified execution probabilities converges to Eq. (1)'s
// prediction. It also measures what the analytical model abstracts away —
// the energy cost of partially completed hyper-periods at mode switches
// and of reconfiguration time.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"momosyn/internal/model"
	"momosyn/internal/synth"
)

// Event is one entry of a usage trace: the system stays in Mode for Dwell
// seconds before the next event.
type Event struct {
	Mode  model.ModeID
	Dwell float64
}

// Trace is a complete usage scenario.
type Trace []Event

// Duration returns the total trace time.
func (t Trace) Duration() float64 {
	d := 0.0
	for _, e := range t {
		d += e.Dwell
	}
	return d
}

// Residency returns the fraction of trace time spent in each mode,
// indexed by ModeID.
func (t Trace) Residency(nModes int) []float64 {
	res := make([]float64, nModes)
	total := t.Duration()
	if total <= 0 {
		return res
	}
	for _, e := range t {
		res[e.Mode] += e.Dwell
	}
	for i := range res {
		res[i] /= total
	}
	return res
}

// TraceConfig controls random trace generation.
type TraceConfig struct {
	// Horizon is the target trace duration in seconds.
	Horizon float64
	// MeanDwell is the average time spent in a mode per visit. Individual
	// dwells are drawn so that long-run residencies match the modes'
	// execution probabilities.
	MeanDwell float64
	// Seed seeds the trace RNG.
	Seed int64
}

// GenerateTrace builds a random usage trace whose mode transitions follow
// the OMSM's edges and whose long-run residencies converge to the modes'
// execution probabilities Ψ. Mode visits follow a random walk over the
// transition graph; each visit's dwell time is drawn exponential-like with
// mean proportional to Ψ(mode)/visitShare(mode), so that even an uneven
// walk yields the specified time shares.
func GenerateTrace(app *model.OMSM, cfg TraceConfig) (Trace, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive")
	}
	if cfg.MeanDwell <= 0 {
		cfg.MeanDwell = cfg.Horizon / 100
	}
	succ := make(map[model.ModeID][]model.ModeID)
	for _, tr := range app.Transitions {
		succ[tr.From] = append(succ[tr.From], tr.To)
	}
	for id := range succ {
		s := succ[id]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	if len(app.Modes) > 1 {
		for _, m := range app.Modes {
			if len(succ[m.ID]) == 0 {
				return nil, fmt.Errorf("sim: mode %q has no outgoing transition", m.Name)
			}
		}
	}

	// Deficit-steered dwell selection: the walk visits modes according to
	// the transition structure; each visit dwells just long enough to move
	// the mode's realised time share toward its execution probability Ψ,
	// so long-run residencies converge to the specified usage profile
	// regardless of the walk's visit frequencies.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var trace Trace
	perMode := make([]float64, len(app.Modes))
	cur := model.ModeID(0)
	elapsed := 0.0
	for elapsed < cfg.Horizon {
		m := app.Mode(cur)
		// Dwell X solving Ψ = (spent+X)/(elapsed+X), i.e. the visit that
		// exactly restores the mode's target share, jittered ±50% and
		// floored at one hyper-period so every visit does real work.
		need := 0.0
		if m.Prob < 1 {
			need = (m.Prob*elapsed - perMode[cur]) / (1 - m.Prob)
		} else {
			need = cfg.Horizon - elapsed
		}
		need += m.Prob * cfg.MeanDwell * float64(len(app.Modes))
		dwell := need * (0.5 + rng.Float64())
		if dwell < m.Period {
			dwell = m.Period
		}
		trace = append(trace, Event{Mode: cur, Dwell: dwell})
		perMode[cur] += dwell
		elapsed += dwell
		if len(succ[cur]) == 0 {
			break
		}
		cur = succ[cur][rng.Intn(len(succ[cur]))]
	}
	return trace, nil
}

// Result aggregates one simulation run.
type Result struct {
	// Duration is the simulated time.
	Duration float64
	// DynamicEnergy and StaticEnergy are accumulated joules.
	DynamicEnergy, StaticEnergy float64
	// TransitionTime is the total time spent reconfiguring between modes;
	// TransitionCount the number of mode switches.
	TransitionTime  float64
	TransitionCount int
	// HyperPeriods counts completed task-graph iterations per mode.
	HyperPeriods []int
	// Residency is the per-mode time share actually realised by the trace.
	Residency []float64
	// DeadlineViolations counts transition-time limit violations observed.
	DeadlineViolations int
}

// AveragePower returns total energy over total time.
func (r *Result) AveragePower() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return (r.DynamicEnergy + r.StaticEnergy) / r.Duration
}

// Run simulates the implementation over the trace. Each dwell executes
// ceil-free whole hyper-periods of the mode's schedule (a partial final
// hyper-period contributes proportional dynamic energy, matching a system
// that is stopped mid-iteration); static power accrues for the active
// component set of the mode over the full dwell; mode switches cost the
// allocation's reconfiguration time, during which all components of the
// incoming mode are powered but no dynamic work happens.
func Run(sys *model.System, impl *synth.Evaluation, trace Trace) (*Result, error) {
	if len(impl.Schedules) != len(sys.App.Modes) {
		return nil, fmt.Errorf("sim: implementation has %d schedules, app has %d modes",
			len(impl.Schedules), len(sys.App.Modes))
	}
	res := &Result{
		HyperPeriods: make([]int, len(sys.App.Modes)),
	}
	var prev model.ModeID = -1
	for _, ev := range trace {
		mode := sys.App.Mode(ev.Mode)
		if mode == nil {
			return nil, fmt.Errorf("sim: trace references unknown mode %d", ev.Mode)
		}
		dwell := ev.Dwell

		// Mode transition overhead.
		if prev >= 0 && prev != ev.Mode {
			tt := impl.Alloc.TransitionTime(sys, model.Transition{From: prev, To: ev.Mode})
			res.TransitionCount++
			res.TransitionTime += tt
			res.StaticEnergy += tt * staticPowerOf(sys, impl, ev.Mode)
			if lim := transitionLimit(sys, prev, ev.Mode); lim > 0 && tt > lim {
				res.DeadlineViolations++
			}
		}

		sc := impl.Schedules[ev.Mode]
		perIter := sc.DynamicEnergy()
		iters := int(dwell / mode.Period)
		frac := dwell/mode.Period - float64(iters)
		res.HyperPeriods[ev.Mode] += iters
		res.DynamicEnergy += (float64(iters) + frac) * perIter
		res.StaticEnergy += dwell * staticPowerOf(sys, impl, ev.Mode)
		res.Duration += dwell
		prev = ev.Mode
	}
	res.Residency = trace.Residency(len(sys.App.Modes))
	return res, nil
}

// staticPowerOf returns the static power of the components that stay
// powered during the mode under the implementation's mapping.
func staticPowerOf(sys *model.System, impl *synth.Evaluation, mode model.ModeID) float64 {
	return impl.ModePowers[mode].StaticPower
}

// transitionLimit returns tTmax of the (from, to) transition, or zero when
// the OMSM does not constrain it.
func transitionLimit(sys *model.System, from, to model.ModeID) float64 {
	for _, tr := range sys.App.Transitions {
		if tr.From == from && tr.To == to {
			return tr.MaxTime
		}
	}
	return 0
}

// PredictedPower returns the analytical Eq. (1) power of the
// implementation under the given residency vector (pass the specification
// probabilities for the paper's objective, or a trace's realised
// residencies for an apples-to-apples comparison with Run).
func PredictedPower(sys *model.System, impl *synth.Evaluation, residency []float64) float64 {
	total := 0.0
	for m := range impl.ModePowers {
		total += impl.ModePowers[m].Total() * residency[m]
	}
	return total
}
