package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"momosyn/internal/bench"
)

func TestTraceRoundTrip(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(sys.App, TraceConfig{Horizon: 300, MeanDwell: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sys.App, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()), sys.App)
	if err != nil {
		t.Fatalf("read back: %v\n%s", err, buf.String())
	}
	if len(got) != len(trace) {
		t.Fatalf("event counts differ: %d vs %d", len(got), len(trace))
	}
	for i := range got {
		if got[i].Mode != trace[i].Mode {
			t.Fatalf("event %d mode differs", i)
		}
		if math.Abs(got[i].Dwell-trace[i].Dwell) > 1e-9*trace[i].Dwell {
			t.Fatalf("event %d dwell %v vs %v", i, got[i].Dwell, trace[i].Dwell)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, in string
	}{
		{"empty", "# nothing\n"},
		{"bad directive", "go rlc 1s"},
		{"wrong arity", "at rlc"},
		{"unknown mode", "at warp 1s"},
		{"bad time", "at rlc fast"},
		{"zero dwell", "at rlc 0s"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.in), sys.App); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWriteTraceRejectsUnknownMode(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&bytes.Buffer{}, sys.App, Trace{{Mode: 99, Dwell: 1}}); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
}

// TestTraceReplayComparesImplementations replays one recorded trace
// against both a probability-aware and a probability-neglecting
// implementation — the apples-to-apples comparison the trace format
// exists for.
func TestTraceReplayComparesImplementations(t *testing.T) {
	sys, impl := synthPhone(t)
	trace, err := GenerateTrace(sys.App, TraceConfig{Horizon: 2000, MeanDwell: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sys.App, trace); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadTrace(bytes.NewReader(buf.Bytes()), sys.App)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sys, impl, trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sys, impl, replay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.AveragePower()-b.AveragePower())/a.AveragePower() > 1e-9 {
		t.Errorf("replayed trace gives different power: %v vs %v",
			a.AveragePower(), b.AveragePower())
	}
}
