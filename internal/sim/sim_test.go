package sim

import (
	"math"
	"testing"

	"momosyn/internal/bench"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

func synthPhone(t *testing.T) (*model.System, *synth.Evaluation) {
	t.Helper()
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(sys, synth.Options{
		GA:   ga.Config{PopSize: 24, MaxGenerations: 60, Stagnation: 20},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, res.Best
}

func TestTraceResidencyAndDuration(t *testing.T) {
	tr := Trace{{Mode: 0, Dwell: 3}, {Mode: 1, Dwell: 1}, {Mode: 0, Dwell: 1}}
	if d := tr.Duration(); d != 5 {
		t.Errorf("duration = %v", d)
	}
	res := tr.Residency(2)
	if math.Abs(res[0]-0.8) > 1e-12 || math.Abs(res[1]-0.2) > 1e-12 {
		t.Errorf("residency = %v", res)
	}
	if got := Trace(nil).Residency(2); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty trace residency = %v", got)
	}
}

func TestGenerateTraceFollowsTransitions(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(sys.App, TraceConfig{Horizon: 3600, MeanDwell: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Duration() < 3600 {
		t.Errorf("trace shorter than horizon: %v", trace.Duration())
	}
	// Every consecutive pair must be a declared transition.
	allowed := make(map[[2]model.ModeID]bool)
	for _, tr := range sys.App.Transitions {
		allowed[[2]model.ModeID{tr.From, tr.To}] = true
	}
	for i := 1; i < len(trace); i++ {
		key := [2]model.ModeID{trace[i-1].Mode, trace[i].Mode}
		if !allowed[key] {
			t.Fatalf("trace uses undeclared transition %v", key)
		}
	}
	// Dwell at least one hyper-period per visit.
	for _, ev := range trace {
		if ev.Dwell < sys.App.Mode(ev.Mode).Period-1e-12 {
			t.Fatalf("dwell %v below period of mode %d", ev.Dwell, ev.Mode)
		}
	}
}

func TestGenerateTraceResidencyMatchesProbabilities(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(sys.App, TraceConfig{Horizon: 50000, MeanDwell: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := trace.Residency(len(sys.App.Modes))
	for _, m := range sys.App.Modes {
		got := res[m.ID]
		// Long trace: each residency within a few points of Ψ.
		if math.Abs(got-m.Prob) > 0.06 {
			t.Errorf("mode %s residency %.3f, want ~%.2f", m.Name, got, m.Prob)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := GenerateTrace(sys.App, TraceConfig{Horizon: 100, MeanDwell: 2, Seed: 3})
	b, _ := GenerateTrace(sys.App, TraceConfig{Horizon: 100, MeanDwell: 2, Seed: 3})
	if len(a) != len(b) {
		t.Fatal("trace lengths differ for the same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateTrace(sys.App, TraceConfig{Horizon: 0}); err == nil {
		t.Error("zero horizon must be rejected")
	}
	// A mode without outgoing transition is rejected for multi-mode apps.
	app := &model.OMSM{Modes: []*model.Mode{
		{ID: 0, Prob: 0.5, Period: 1},
		{ID: 1, Prob: 0.5, Period: 1},
	}}
	app.Transitions = []model.Transition{{From: 0, To: 1}}
	if _, err := GenerateTrace(app, TraceConfig{Horizon: 10}); err == nil {
		t.Error("sink mode must be rejected")
	}
}

func TestRunMatchesAnalyticalPrediction(t *testing.T) {
	sys, impl := synthPhone(t)
	trace, err := GenerateTrace(sys.App, TraceConfig{Horizon: 20000, MeanDwell: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, impl, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against Eq. (1) evaluated at the trace's realised residency:
	// the only divergence is transition overhead, which is tiny here.
	predicted := PredictedPower(sys, impl, res.Residency)
	got := res.AveragePower()
	if math.Abs(got-predicted)/predicted > 0.02 {
		t.Errorf("simulated %.6f mW vs predicted %.6f mW (>2%% apart)", got*1e3, predicted*1e3)
	}
	// And against the specification probabilities it lands near the
	// synthesis objective.
	objective := impl.AvgPower
	if math.Abs(got-objective)/objective > 0.15 {
		t.Errorf("simulated %.6f mW far from objective %.6f mW", got*1e3, objective*1e3)
	}
	if res.TransitionCount == 0 {
		t.Error("a long trace must switch modes")
	}
	if res.Duration <= 0 || res.DynamicEnergy <= 0 || res.StaticEnergy <= 0 {
		t.Error("energy accounting must be populated")
	}
	for m, n := range res.HyperPeriods {
		if res.Residency[m] > 0.01 && n == 0 {
			t.Errorf("mode %d visited but no hyper-period completed", m)
		}
	}
}

func TestRunSingleModeExactEnergy(t *testing.T) {
	// A hand trace of exactly 10 hyper-periods of one mode: energies are
	// exactly 10x the per-period numbers.
	sys, impl := synthPhone(t)
	mode := sys.App.Modes[0]
	trace := Trace{{Mode: 0, Dwell: 10 * mode.Period}}
	res, err := Run(sys, impl, trace)
	if err != nil {
		t.Fatal(err)
	}
	wantDyn := 10 * impl.Schedules[0].DynamicEnergy()
	if math.Abs(res.DynamicEnergy-wantDyn)/wantDyn > 1e-9 {
		t.Errorf("dynamic = %v, want %v", res.DynamicEnergy, wantDyn)
	}
	wantStat := 10 * mode.Period * impl.ModePowers[0].StaticPower
	if math.Abs(res.StaticEnergy-wantStat)/wantStat > 1e-9 {
		t.Errorf("static = %v, want %v", res.StaticEnergy, wantStat)
	}
	if res.HyperPeriods[0] != 10 {
		t.Errorf("hyper-periods = %d, want 10", res.HyperPeriods[0])
	}
	if res.TransitionCount != 0 {
		t.Error("single-mode trace has no transitions")
	}
}

func TestRunPartialHyperPeriod(t *testing.T) {
	sys, impl := synthPhone(t)
	mode := sys.App.Modes[0]
	trace := Trace{{Mode: 0, Dwell: 2.5 * mode.Period}}
	res, err := Run(sys, impl, trace)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.5 * impl.Schedules[0].DynamicEnergy()
	if math.Abs(res.DynamicEnergy-want)/want > 1e-9 {
		t.Errorf("partial-period dynamic = %v, want %v", res.DynamicEnergy, want)
	}
	if res.HyperPeriods[0] != 2 {
		t.Errorf("completed hyper-periods = %d, want 2", res.HyperPeriods[0])
	}
}

func TestRunRejectsBadTrace(t *testing.T) {
	sys, impl := synthPhone(t)
	if _, err := Run(sys, impl, Trace{{Mode: 99, Dwell: 1}}); err == nil {
		t.Error("unknown mode must be rejected")
	}
}

func TestPredictedPowerMatchesEvaluation(t *testing.T) {
	sys, impl := synthPhone(t)
	probs := make([]float64, len(sys.App.Modes))
	for i, m := range sys.App.Modes {
		probs[i] = m.Prob
	}
	got := PredictedPower(sys, impl, probs)
	if math.Abs(got-impl.AvgPower)/impl.AvgPower > 1e-12 {
		t.Errorf("PredictedPower %v != evaluation %v", got, impl.AvgPower)
	}
}

// TestRunAccountsReconfiguration exercises the transition-overhead path:
// the SDR's FPGA swaps cores at mode changes, so a trace with switches
// must accumulate reconfiguration time that the analytical Eq. (1) model
// does not capture.
func TestRunAccountsReconfiguration(t *testing.T) {
	sys, err := bench.SDR()
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(sys, synth.Options{
		UseDVS: true,
		GA:     ga.Config{PopSize: 32, MaxGenerations: 80, Stagnation: 30},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible() {
		t.Fatal("SDR synthesis infeasible")
	}
	// The FPGA must carry cores somewhere for this test to bite.
	usesFPGA := false
	for m := range sys.App.Modes {
		if res.Best.Mapping.UsesPE(model.ModeID(m), 1) {
			usesFPGA = true
		}
	}
	if !usesFPGA {
		t.Skip("optimum avoids the FPGA entirely; nothing to reconfigure")
	}
	trace, err := GenerateTrace(sys.App, TraceConfig{Horizon: 2000, MeanDwell: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(sys, res.Best, trace)
	if err != nil {
		t.Fatal(err)
	}
	if out.TransitionCount == 0 {
		t.Fatal("trace must switch modes")
	}
	if out.TransitionTime <= 0 {
		t.Error("FPGA mode switches must accumulate reconfiguration time")
	}
	if out.DeadlineViolations != 0 {
		t.Errorf("feasible implementation violated %d transition limits in simulation",
			out.DeadlineViolations)
	}
	// Reconfiguration inflates measured power slightly above the
	// residency-weighted analytical value; the difference stays small.
	pred := PredictedPower(sys, res.Best, out.Residency)
	if got := out.AveragePower(); got < pred-1e-9 {
		t.Errorf("measured %v below prediction %v despite overheads", got, pred)
	}
}
