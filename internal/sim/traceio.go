package sim

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"momosyn/internal/model"
	"momosyn/internal/specio"
)

// Trace persistence: one event per line,
//
//	at <mode> <dwell>
//
// with the dwell carrying a time unit (e.g. "at rlc 2.5s"). Recorded
// traces can be replayed against different implementations — e.g. to judge
// a probability-neglecting and a probability-aware synthesis on the exact
// same usage scenario.

// WriteTrace emits the trace in the text format.
func WriteTrace(w io.Writer, app *model.OMSM, trace Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# usage trace for %s: %d events, %s total\n",
		app.Name, len(trace), specio.FormatTime(trace.Duration()))
	for _, ev := range trace {
		mode := app.Mode(ev.Mode)
		if mode == nil {
			return fmt.Errorf("sim: trace references unknown mode %d", ev.Mode)
		}
		fmt.Fprintf(bw, "at %s %s\n", mode.Name, specio.FormatTime(ev.Dwell))
	}
	return bw.Flush()
}

// ReadTrace parses a trace against the application's mode names.
func ReadTrace(r io.Reader, app *model.OMSM) (Trace, error) {
	byName := make(map[string]model.ModeID, len(app.Modes))
	for _, m := range app.Modes {
		byName[m.Name] = m.ID
	}
	var trace Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "at" || len(fields) != 3 {
			return nil, fmt.Errorf("sim: line %d: want 'at MODE DWELL'", line)
		}
		id, ok := byName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("sim: line %d: unknown mode %q", line, fields[1])
		}
		dwell, err := specio.ParseTime(fields[2])
		if err != nil {
			return nil, fmt.Errorf("sim: line %d: %v", line, err)
		}
		if dwell <= 0 {
			return nil, fmt.Errorf("sim: line %d: dwell must be positive", line)
		}
		trace = append(trace, Event{Mode: id, Dwell: dwell})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	return trace, nil
}
