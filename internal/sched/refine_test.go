package sched

import (
	"math/rand"
	"testing"

	"momosyn/internal/gen"
	"momosyn/internal/model"
)

// contentionSystem: six independent tasks of alternating lengths on one
// CPU plus a tight chain, where priority order matters for lateness.
func contentionSystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("refine")
	b.AddPE(model.PE{Name: "cpu0", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "cpu1", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu0", "cpu1")
	b.AddType("long", model.ImplSpec{PE: "cpu0", Time: 30e-3, Power: 1e-3})
	b.AddType("short", model.ImplSpec{PE: "cpu0", Time: 5e-3, Power: 1e-3})
	b.BeginMode("m", 1, 70e-3)
	b.AddTask("l0", "long", 0)
	b.AddTask("l1", "long", 0)
	b.AddTask("s0", "short", 0)
	b.AddTask("s1", "short", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRefineNeverWorse(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		sys, err := gen.Generate(gen.NewParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		mapping := model.NewMapping(sys.App)
		rng := rand.New(rand.NewSource(seed))
		for mi, mode := range sys.App.Modes {
			for ti, task := range mode.Graph.Tasks {
				cands := sys.CandidatePEs(task.Type)
				mapping[mi][ti] = cands[rng.Intn(len(cands))]
			}
		}
		for m := range sys.App.Modes {
			base, err := ListSchedule(sys, model.ModeID(m), mapping, SingleCores{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Refine(sys, model.ModeID(m), mapping, SingleCores{}, nil, 20, rng)
			if err != nil {
				t.Fatal(err)
			}
			if scheduleCost(sys, ref).less(scheduleCost(sys, base)) {
				continue // strictly better: fine
			}
			// Otherwise it must be exactly as good (the baseline itself).
			cb, cr := scheduleCost(sys, base), scheduleCost(sys, ref)
			if cb.less(cr) {
				t.Fatalf("seed %d mode %d: refinement degraded the schedule (%+v -> %+v)",
					seed, m, cb, cr)
			}
		}
	}
}

func TestRefineKeepsSchedulesValid(t *testing.T) {
	sys := contentionSystem(t)
	mapping := model.NewMapping(sys.App)
	for ti := range mapping[0] {
		mapping[0][ti] = 0
	}
	rng := rand.New(rand.NewSource(3))
	sc, err := Refine(sys, 0, mapping, SingleCores{}, nil, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Still sequential on the single CPU.
	for i := range sc.Tasks {
		for j := i + 1; j < len(sc.Tasks); j++ {
			a, b := sc.Tasks[i], sc.Tasks[j]
			if a.Start < b.Finish-1e-12 && b.Start < a.Finish-1e-12 {
				t.Fatalf("refined schedule overlaps tasks %d and %d", i, j)
			}
		}
	}
	// 70 ms of work in a 70 ms period: the refined schedule must be
	// feasible regardless of ordering.
	if !sc.Feasible(sys) {
		t.Error("refined schedule infeasible")
	}
}

func TestRefineZeroIterationsIsListSchedule(t *testing.T) {
	sys := contentionSystem(t)
	mapping := model.NewMapping(sys.App)
	for ti := range mapping[0] {
		mapping[0][ti] = 0
	}
	base, err := ListSchedule(sys, 0, mapping, SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Refine(sys, 0, mapping, SingleCores{}, nil, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != ref.Makespan || base.DynamicEnergy() != ref.DynamicEnergy() {
		t.Error("zero iterations must reproduce the list schedule")
	}
}

func TestCostOrdering(t *testing.T) {
	a := cost{lateness: 0, makespan: 1, energy: 5}
	b := cost{lateness: 0, makespan: 2, energy: 1}
	if !a.less(b) || b.less(a) {
		t.Error("makespan must dominate energy")
	}
	c := cost{lateness: 1, makespan: 0, energy: 0}
	if !a.less(c) {
		t.Error("lateness must dominate everything")
	}
	if a.less(a) {
		t.Error("cost not irreflexive")
	}
}
