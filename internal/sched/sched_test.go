package sched

import (
	"math"
	"testing"

	"momosyn/internal/model"
)

// twoPESystem builds a system with one GPP and one ASIC joined by a bus.
// Mode 0 holds a diamond of four tasks of type "k" (dual implementation)
// plus explicit byte counts so communication delays are visible.
func twoPESystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("sched")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "hw", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 1000})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, PowerActive: 1e-3}, "cpu", "hw")
	b.AddType("k",
		model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 2e-3},
		model.ImplSpec{PE: "hw", Time: 1e-3, Power: 0.2e-3, Area: 100},
	)
	// Diamond: t0 -> {t1, t2} -> t3
	b.BeginMode("m", 1.0, 0.1)
	b.AddTask("t0", "k", 0)
	b.AddTask("t1", "k", 0)
	b.AddTask("t2", "k", 0)
	b.AddTask("t3", "k", 0)
	b.AddEdge("t0", "t1", 1000) // 1 ms on the bus
	b.AddEdge("t0", "t2", 1000)
	b.AddEdge("t1", "t3", 1000)
	b.AddEdge("t2", "t3", 1000)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func allTo(sys *model.System, pe model.PEID) model.Mapping {
	m := model.NewMapping(sys.App)
	for mi := range m {
		for ti := range m[mi] {
			m[mi][ti] = pe
		}
	}
	return m
}

func TestMobilityChainAllSoftware(t *testing.T) {
	sys := twoPESystem(t)
	mob, err := ComputeMobility(sys, 0, allTo(sys, 0))
	if err != nil {
		t.Fatal(err)
	}
	// All on one PE: zero comm cost. ASAP: t0=0, t1=t2=10ms, t3=20ms.
	want := []float64{0, 10e-3, 10e-3, 20e-3}
	for i, w := range want {
		if math.Abs(mob.ASAP[i]-w) > 1e-12 {
			t.Errorf("ASAP[%d] = %v, want %v", i, mob.ASAP[i], w)
		}
	}
	// ALAP anchored at the 100 ms period: t3 starts at 90, t1/t2 at 80,
	// t0 at 70 ms.
	wantALAP := []float64{70e-3, 80e-3, 80e-3, 90e-3}
	for i, w := range wantALAP {
		if math.Abs(mob.ALAP[i]-w) > 1e-12 {
			t.Errorf("ALAP[%d] = %v, want %v", i, mob.ALAP[i], w)
		}
	}
	if mob.Slack(0) <= 0 {
		t.Error("slack must be positive for a loose period")
	}
}

func TestMobilityIncludesCommBounds(t *testing.T) {
	sys := twoPESystem(t)
	m := allTo(sys, 0)
	m[0][1] = 1 // t1 on hw: edges t0->t1 and t1->t3 cross the bus (1 ms)
	mob, err := ComputeMobility(sys, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	// ASAP t1 = exec(t0) + comm = 10ms + 1ms = 11ms; exec(t1 on hw) = 1ms;
	// ASAP t3 = max(t1 path: 11+1+1=13ms, t2 path: 10+10=20ms) = 20ms.
	if math.Abs(mob.ASAP[1]-11e-3) > 1e-12 {
		t.Errorf("ASAP[t1] = %v, want 11ms", mob.ASAP[1])
	}
	if math.Abs(mob.ASAP[3]-20e-3) > 1e-12 {
		t.Errorf("ASAP[t3] = %v, want 20ms", mob.ASAP[3])
	}
}

func TestListScheduleSoftwareSerialises(t *testing.T) {
	sys := twoPESystem(t)
	sc, err := ListSchedule(sys, 0, allTo(sys, 0), SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Four 10 ms tasks on one CPU: makespan 40 ms, no overlap.
	if math.Abs(sc.Makespan-40e-3) > 1e-12 {
		t.Errorf("makespan = %v, want 40ms", sc.Makespan)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			a, b := sc.Tasks[i], sc.Tasks[j]
			if a.Start < b.Finish && b.Start < a.Finish {
				t.Errorf("tasks %d and %d overlap on the CPU", i, j)
			}
		}
	}
	if !sc.Feasible(sys) {
		t.Error("schedule must be feasible (period 100 ms)")
	}
	if sc.Unroutable != 0 {
		t.Errorf("unroutable = %d, want 0", sc.Unroutable)
	}
}

func TestListScheduleHardwareParallelWithReplicas(t *testing.T) {
	sys := twoPESystem(t)
	m := allTo(sys, 1)
	// Two replica cores for type k: t1 and t2 can run in parallel.
	two := fixedCores{n: 2}
	sc, err := ListSchedule(sys, 0, m, two, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All on hw, no comms cross PEs: t0 [0,1], t1/t2 in parallel [1,2],
	// t3 [2,3] ms.
	if math.Abs(sc.Makespan-3e-3) > 1e-12 {
		t.Errorf("makespan = %v, want 3ms", sc.Makespan)
	}
	if sc.Tasks[1].Core == sc.Tasks[2].Core {
		t.Error("parallel tasks should use distinct core instances")
	}
}

func TestListScheduleHardwareSingleCoreSerialises(t *testing.T) {
	sys := twoPESystem(t)
	sc, err := ListSchedule(sys, 0, allTo(sys, 1), SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One core: contention serialises t1 and t2: makespan 4 ms.
	if math.Abs(sc.Makespan-4e-3) > 1e-12 {
		t.Errorf("makespan = %v, want 4ms", sc.Makespan)
	}
}

func TestListScheduleCommunicationContention(t *testing.T) {
	sys := twoPESystem(t)
	m := allTo(sys, 0)
	m[0][3] = 1 // t3 on hw: edges t1->t3 and t2->t3 cross the bus
	sc, err := ListSchedule(sys, 0, m, SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// t1 finishes at 20ms, t2 at 30ms (CPU serial); two 1 ms messages
	// sequentialise on the single bus; t3 (1 ms on hw) starts after the
	// later arrival: 31 ms, finishes 32 ms.
	e2 := sc.Comms[2] // t1->t3
	e3 := sc.Comms[3] // t2->t3
	if e2.CL != 0 || e3.CL != 0 {
		t.Fatalf("both messages must use the bus")
	}
	if e2.Start < sc.Tasks[1].Finish-1e-12 || e3.Start < sc.Tasks[2].Finish-1e-12 {
		t.Error("messages must not start before their producer finishes")
	}
	if overlap(e2.Start, e2.Finish, e3.Start, e3.Finish) {
		t.Error("messages on one bus must not overlap")
	}
	if math.Abs(sc.Makespan-32e-3) > 1e-12 {
		t.Errorf("makespan = %v, want 32ms", sc.Makespan)
	}
	// Communication energy: PowerActive * time.
	if math.Abs(e2.Energy-1e-3*1e-3) > 1e-15 {
		t.Errorf("comm energy = %v, want 1e-6", e2.Energy)
	}
}

func overlap(a0, a1, b0, b1 float64) bool {
	return a0 < b1-1e-12 && b0 < a1-1e-12
}

func TestListScheduleUnroutable(t *testing.T) {
	// Two PEs with NO connecting link.
	b := model.NewBuilder("unroutable")
	b.AddPE(model.PE{Name: "cpu0", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "cpu1", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddCL(model.CL{Name: "loop0", BytesPerSec: 1e6}, "cpu0")
	b.AddType("k",
		model.ImplSpec{PE: "cpu0", Time: 1e-3, Power: 1e-3},
		model.ImplSpec{PE: "cpu1", Time: 1e-3, Power: 1e-3},
	)
	b.BeginMode("m", 1, 0.1)
	b.AddTask("a", "k", 0)
	b.AddTask("b", "k", 0)
	b.AddEdge("a", "b", 100)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1] = 0, 1
	sc, err := ListSchedule(sys, 0, m, SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1", sc.Unroutable)
	}
	if sc.Feasible(sys) {
		t.Error("unroutable schedule must be infeasible")
	}
	if sc.Comms[0].Routed {
		t.Error("comm slot must be marked unrouted")
	}
}

func TestScheduleLateness(t *testing.T) {
	sys := twoPESystem(t)
	// Shrink the period so the all-software schedule (40 ms) is late.
	sys.App.Modes[0].Period = 25e-3
	sc, err := ListSchedule(sys, 0, allTo(sys, 0), SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	late := sc.Lateness(sys)
	// t3 finishes at 40 ms against a 25 ms deadline => 15 ms late; t2
	// finishes at 30 ms => 5 ms late (priority order t1 before t2).
	if math.Abs(late-20e-3) > 1e-9 {
		t.Errorf("lateness = %v, want 20ms", late)
	}
	if sc.Feasible(sys) {
		t.Error("late schedule must be infeasible")
	}
}

func TestUsedCLs(t *testing.T) {
	sys := twoPESystem(t)
	sc, err := ListSchedule(sys, 0, allTo(sys, 0), SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	used := sc.UsedCLs(sys.Arch)
	if used[0] {
		t.Error("all-intra-PE schedule must leave the bus shut down")
	}
	m := allTo(sys, 0)
	m[0][1] = 1
	sc, err = ListSchedule(sys, 0, m, SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.UsedCLs(sys.Arch)[0] {
		t.Error("cross-PE traffic must mark the bus active")
	}
}

func TestDynamicEnergyAggregates(t *testing.T) {
	sys := twoPESystem(t)
	sc, err := ListSchedule(sys, 0, allTo(sys, 0), SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Four tasks at 2 mW for 10 ms each = 80 uJ; no comm energy.
	if got, want := sc.DynamicEnergy(), 4*2e-3*10e-3; math.Abs(got-want) > 1e-15 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestMaxOverlap(t *testing.T) {
	mob := &Mobility{
		ASAP: []float64{0, 0, 5, 20},
		ALAP: []float64{0, 0, 5, 20},
		Exec: []float64{10, 10, 10, 5},
	}
	if got := mob.MaxOverlap([]model.TaskID{0, 1}); got != 2 {
		t.Errorf("overlap(0,1) = %d, want 2", got)
	}
	if got := mob.MaxOverlap([]model.TaskID{0, 3}); got != 1 {
		t.Errorf("overlap(0,3) = %d, want 1 (disjoint windows)", got)
	}
	if got := mob.MaxOverlap([]model.TaskID{0, 1, 2}); got != 3 {
		t.Errorf("overlap(0,1,2) = %d, want 3", got)
	}
	if got := mob.MaxOverlap(nil); got != 0 {
		t.Errorf("overlap(nil) = %d, want 0", got)
	}
	if got := mob.MaxOverlap([]model.TaskID{2}); got != 1 {
		t.Errorf("overlap(single) = %d, want 1", got)
	}
}

// fixedCores grants a constant number of instances for every (PE, type).
type fixedCores struct{ n int }

func (f fixedCores) Instances(model.ModeID, model.PEID, model.TaskTypeID) int { return f.n }

func TestPriorityPrefersUrgentTasks(t *testing.T) {
	// Two independent chains on one CPU; chain A has a tight deadline on
	// its sink, so its tasks must be scheduled first.
	b := model.NewBuilder("prio")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu")
	b.AddType("k", model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 1e-3})
	b.BeginMode("m", 1, 0.1)
	b.AddTask("loose", "k", 0)     // deadline = period (100 ms)
	b.AddTask("tight", "k", 12e-3) // must finish by 12 ms
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ListSchedule(sys, 0, allTo(sys, 0), SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Tasks[1].Start > 1e-12 {
		t.Errorf("tight task must run first, started at %v", sc.Tasks[1].Start)
	}
	if !sc.Feasible(sys) {
		t.Error("schedule must meet the tight deadline")
	}
}
