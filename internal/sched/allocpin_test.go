package sched

import (
	"testing"

	"momosyn/internal/allocpin"
)

// Sinks defeat dead-code elimination of the measured calls.
var (
	sinkF float64
	sinkB bool
)

// TestAllocPins proves every //mm:noalloc function in this package runs
// with zero allocations on realistic inputs (see internal/allocpin).
func TestAllocPins(t *testing.T) {
	sys := twoPESystem(t)
	mapping := allTo(sys, 0)
	mapping[0][1] = 1 // t1 on hw: comm paths cross the bus
	mode := sys.App.Mode(0)
	g := mode.Graph
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	mob, err := ComputeMobility(sys, 0, mapping)
	if err != nil {
		t.Fatal(err)
	}
	crossEdge := g.Edge(0) // t0 -> t1 spans cpu -> hw

	// A finished schedule for the read-only pins.
	done, err := ListSchedule(sys, 0, mapping, SingleCores{}, mob)
	if err != nil {
		t.Fatal(err)
	}
	c1 := scheduleCost(sys, done)
	c2 := c1
	c2.energy++

	// A mutable scratch schedule for the scheduling-step pins. Seeding it
	// via listSchedule fills every predecessor slot scheduleTask reads.
	scratch, _, err := listSchedule(sys, 0, mapping, SingleCores{}, mob, false)
	if err != nil {
		t.Fatal(err)
	}
	rs := &resourceState{
		peFree:   make([]float64, len(sys.Arch.PEs)),
		coreFree: make(map[coreKey][]float64),
		clFree:   make([]float64, len(sys.Arch.CLs)),
	}
	prepCorePools(sys, mode, SingleCores{}, rs)

	allocpin.Verify(t, ".", []allocpin.Pin{
		{Name: "Mobility.Slack", Body: func() { sinkF = mob.Slack(1) }},
		{Name: "Mobility.fill", Body: func() { mob.fill(sys, mode, 0, mapping, order) }},
		{Name: "commBound", Body: func() { sinkF = commBound(sys, crossEdge, 0, 1, mode.Period) }},
		{Name: "execTime", Body: func() { sinkF = execTime(sys, mode, 0, 0) }},
		{Name: "unroutablePenalty", Body: func() { sinkF = unroutablePenalty(mode.Period) }},
		{Name: "scheduleTask", Body: func() { scheduleTask(sys, mode, mapping[0], rs, scratch, 3) }},
		{Name: "scheduleComm", Body: func() { sinkF = scheduleComm(sys, mode, mapping[0], rs, scratch, crossEdge) }},
		{Name: "Schedule.Lateness", Body: func() { sinkF = done.Lateness(sys) }},
		{Name: "Schedule.DynamicEnergy", Body: func() { sinkF = done.DynamicEnergy() }},
		{Name: "scheduleCost", Body: func() { c1 = scheduleCost(sys, done) }},
		{Name: "cost.less", Body: func() { sinkB = c1.less(c2) }},
	})
}
