package sched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"momosyn/internal/energy"
	"momosyn/internal/model"
)

// CoreProvider exposes the hardware core allocation of the outer synthesis
// loop to the scheduler: how many core instances of a task type exist on a
// hardware PE while a given mode is active. Software PEs are not queried.
type CoreProvider interface {
	Instances(mode model.ModeID, pe model.PEID, tt model.TaskTypeID) int
}

// SingleCores is the trivial core provider granting exactly one instance
// per (PE, type); useful for tests and for architectures without replica
// cores.
type SingleCores struct{}

// Instances implements CoreProvider.
func (SingleCores) Instances(model.ModeID, model.PEID, model.TaskTypeID) int { return 1 }

// TaskSlot is the scheduled execution of one task.
type TaskSlot struct {
	Task model.TaskID
	PE   model.PEID
	// Core is the core-instance index among the instances of the task's
	// type on the PE; -1 for software PEs.
	Core int
	// Start and Finish are the scheduled execution interval. DVS voltage
	// selection may later stretch the interval.
	Start, Finish float64
	// NomTime and Power are the nominal (Vmax) execution time and dynamic
	// power from the technology library.
	NomTime float64
	Power   float64
	// VoltIdx indexes the PE's voltage levels; it equals the top level
	// until voltage scaling lowers it, and -1 on non-DVS PEs.
	VoltIdx int
	// Energy is the dynamic energy of this execution under the current
	// voltage selection.
	Energy float64
}

// CommSlot is the scheduled transfer of one task-graph edge.
type CommSlot struct {
	Edge model.EdgeID
	// CL is the link carrying the message; NoCL for intra-PE edges and for
	// unroutable edges.
	CL            model.CLID
	Start, Finish float64
	Time          float64
	Power         float64
	Energy        float64
	// Routed is false when the two endpoint PEs share no link; such
	// schedules are infeasible and carry a surrogate delay.
	Routed bool
}

// Schedule is the complete inner-loop result for one mode: communication
// mapping Mγ plus start times Sε for all activities.
type Schedule struct {
	Mode     model.ModeID
	Tasks    []TaskSlot // indexed by TaskID
	Comms    []CommSlot // indexed by EdgeID
	Makespan float64
	// Unroutable counts edges between unconnected PEs.
	Unroutable int
}

// Lateness returns the summed deadline violation over all tasks of the
// schedule: sum over tasks of max(0, finish - min(deadline, period)).
//
//mm:noalloc
func (sc *Schedule) Lateness(s *model.System) float64 {
	mode := s.App.Mode(sc.Mode)
	late := 0.0
	for ti := range sc.Tasks {
		d := mode.Graph.Task(model.TaskID(ti)).EffectiveDeadline(mode.Period)
		if v := sc.Tasks[ti].Finish - d; v > 0 {
			late += v
		}
	}
	return late
}

// Feasible reports whether the schedule routes all communications and meets
// all deadlines.
func (sc *Schedule) Feasible(s *model.System) bool {
	return sc.Unroutable == 0 && sc.Lateness(s) <= 1e-9
}

// DynamicEnergy sums the dynamic energy of all activities under the current
// voltage selection.
//
//mm:noalloc
func (sc *Schedule) DynamicEnergy() float64 {
	e := 0.0
	for i := range sc.Tasks {
		e += sc.Tasks[i].Energy
	}
	for i := range sc.Comms {
		e += sc.Comms[i].Energy
	}
	return e
}

// UsedCLs returns per-CL activity flags: true when at least one message is
// carried by the link during the mode. CLs idle in a mode can be shut down.
func (sc *Schedule) UsedCLs(arch *model.Arch) []bool {
	used := make([]bool, len(arch.CLs))
	for i := range sc.Comms {
		if sc.Comms[i].Routed && sc.Comms[i].CL != model.NoCL && sc.Comms[i].Time > 0 {
			used[sc.Comms[i].CL] = true
		}
	}
	return used
}

// resourceState tracks the next-free time of every sequential resource.
type resourceState struct {
	peFree   []float64             // software PEs
	coreFree map[coreKey][]float64 // hardware core instances
	clFree   []float64             // communication links
	// timed enables wall-clock accounting of the communication-mapping
	// portion of scheduling, accumulated into commTime. Timing is pure
	// observation: it never influences any scheduling decision.
	timed    bool
	commTime time.Duration
}

type coreKey struct {
	pe model.PEID
	tt model.TaskTypeID
}

// ListSchedule constructs the schedule of one mode under the given mapping
// using mobility-driven list scheduling. Tasks are prioritised by latest
// start time (ALAP), ties broken by mobility then task ID. Communications
// are mapped greedily to the connecting link giving the earliest arrival.
func ListSchedule(s *model.System, modeID model.ModeID, mapping model.Mapping, cores CoreProvider, mob *Mobility) (*Schedule, error) {
	sc, _, err := listSchedule(s, modeID, mapping, cores, mob, false)
	return sc, err
}

// ListScheduleTimed is ListSchedule with phase instrumentation: it
// additionally returns the wall-clock time spent inside communication
// mapping (the scheduleComm portion of the run), so callers can report the
// nested comm-mapping share of scheduling without this package depending on
// any observability layer.
func ListScheduleTimed(s *model.System, modeID model.ModeID, mapping model.Mapping, cores CoreProvider, mob *Mobility) (*Schedule, time.Duration, error) {
	return listSchedule(s, modeID, mapping, cores, mob, true)
}

func listSchedule(s *model.System, modeID model.ModeID, mapping model.Mapping, cores CoreProvider, mob *Mobility, timed bool) (*Schedule, time.Duration, error) {
	mode := s.App.Mode(modeID)
	g := mode.Graph
	if mob == nil {
		var err error
		mob, err = ComputeMobility(s, modeID, mapping)
		if err != nil {
			return nil, 0, err
		}
	}
	n := len(g.Tasks)
	sc := &Schedule{
		Mode:  modeID,
		Tasks: make([]TaskSlot, n),
		Comms: make([]CommSlot, len(g.Edges)),
	}
	rs := &resourceState{
		peFree:   make([]float64, len(s.Arch.PEs)),
		coreFree: make(map[coreKey][]float64),
		clFree:   make([]float64, len(s.Arch.CLs)),
		timed:    timed,
	}
	prepCorePools(s, mode, cores, rs)

	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.Dst]++
	}
	scheduled := make([]bool, n)
	ready := make([]model.TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, model.TaskID(i))
		}
	}
	for done := 0; done < n; done++ {
		if len(ready) == 0 {
			return nil, 0, fmt.Errorf("sched: mode %q: dependency cycle", mode.Name)
		}
		sort.Slice(ready, func(i, j int) bool {
			a, b := ready[i], ready[j]
			switch {
			case mob.ALAP[a] < mob.ALAP[b]:
				return true
			case mob.ALAP[b] < mob.ALAP[a]:
				return false
			}
			switch sa, sb := mob.Slack(a), mob.Slack(b); {
			case sa < sb:
				return true
			case sb < sa:
				return false
			}
			return a < b
		})
		t := ready[0]
		ready = ready[1:]
		scheduleTask(s, mode, mapping[modeID], rs, sc, t)
		scheduled[t] = true
		for _, eid := range g.Out(t) {
			d := g.Edge(eid).Dst
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	return sc, rs.commTime, nil
}

// prepCorePools presizes the per-(PE, type) core-instance pools for every
// hardware PE and task type the mode contains, so the scheduling loop never
// has to grow the map or allocate a pool mid-flight.
func prepCorePools(s *model.System, mode *model.Mode, cores CoreProvider, rs *resourceState) {
	for _, pe := range s.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		for _, task := range mode.Graph.Tasks {
			key := coreKey{pe.ID, task.Type}
			if _, ok := rs.coreFree[key]; ok {
				continue
			}
			cnt := cores.Instances(mode.ID, pe.ID, task.Type)
			if cnt < 1 {
				cnt = 1
			}
			rs.coreFree[key] = make([]float64, cnt)
		}
	}
}

// scheduleTask places one task (and its incoming communications) onto the
// architecture. All predecessors are already scheduled; the core pools are
// presized by prepCorePools.
//
//mm:noalloc
func scheduleTask(s *model.System, mode *model.Mode, mapRow []model.PEID, rs *resourceState, sc *Schedule, t model.TaskID) {
	g := mode.Graph
	task := g.Task(t)
	pe := s.Arch.PE(mapRow[t])
	dataReady := 0.0
	var commStart time.Time
	if rs.timed {
		commStart = time.Now()
	}
	for _, eid := range g.In(t) {
		e := g.Edge(eid)
		arr := scheduleComm(s, mode, mapRow, rs, sc, e)
		if arr > dataReady {
			dataReady = arr
		}
	}
	if rs.timed {
		rs.commTime += time.Since(commStart)
	}
	im, okImpl := s.Lib.Type(task.Type).ImplOn(pe.ID)
	exec := im.Time
	power := im.Power
	if !okImpl {
		exec = unroutablePenalty(mode.Period)
		power = 0
	}

	var start float64
	core := -1
	if pe.Class.IsHardware() {
		inst := rs.coreFree[coreKey{pe.ID, task.Type}]
		core = 0
		for i := 1; i < len(inst); i++ {
			if inst[i] < inst[core] {
				core = i
			}
		}
		start = math.Max(dataReady, inst[core])
		inst[core] = start + exec
	} else {
		start = math.Max(dataReady, rs.peFree[pe.ID])
		rs.peFree[pe.ID] = start + exec
	}
	volt := -1
	if pe.DVS {
		volt = len(pe.Levels) - 1
	}
	sc.Tasks[t] = TaskSlot{
		Task:    t,
		PE:      pe.ID,
		Core:    core,
		Start:   start,
		Finish:  start + exec,
		NomTime: exec,
		Power:   power,
		VoltIdx: volt,
		Energy:  power * exec,
	}
	if f := start + exec; f > sc.Makespan {
		sc.Makespan = f
	}
}

// scheduleComm places the message of edge e and returns its arrival time at
// the destination PE.
//
//mm:noalloc
func scheduleComm(s *model.System, mode *model.Mode, mapRow []model.PEID, rs *resourceState, sc *Schedule, e *model.Edge) float64 {
	srcSlot := &sc.Tasks[e.Src]
	srcPE, dstPE := mapRow[e.Src], mapRow[e.Dst]
	slot := CommSlot{Edge: e.ID, CL: model.NoCL, Routed: true}
	if srcPE == dstPE {
		// Intra-PE communication: instantaneous and free.
		slot.Start = srcSlot.Finish
		slot.Finish = srcSlot.Finish
		sc.Comms[e.ID] = slot
		return slot.Finish
	}
	// Greedy communication mapping over an inline link scan (LinksBetween
	// would allocate an ID slice per edge): the connecting CL with the
	// earliest arrival wins; ties go to the lower CL ID for determinism
	// (ascending scan, strict <).
	bestCL := model.NoCL
	bestStart, bestFinish := 0.0, math.Inf(1)
	var bestTime float64
	for _, cand := range s.Arch.CLs {
		if !cand.Connects(srcPE, dstPE) {
			continue
		}
		ct := energy.CommTime(e.Bytes, cand)
		st := math.Max(srcSlot.Finish, rs.clFree[cand.ID])
		if f := st + ct; f < bestFinish {
			bestCL, bestStart, bestFinish, bestTime = cand.ID, st, f, ct
		}
	}
	if bestCL == model.NoCL {
		slot.Routed = false
		slot.Start = srcSlot.Finish
		slot.Time = unroutablePenalty(mode.Period)
		slot.Finish = slot.Start + slot.Time
		sc.Comms[e.ID] = slot
		sc.Unroutable++
		if slot.Finish > sc.Makespan {
			sc.Makespan = slot.Finish
		}
		return slot.Finish
	}
	cl := s.Arch.CL(bestCL)
	rs.clFree[bestCL] = bestFinish
	slot.CL = bestCL
	slot.Start = bestStart
	slot.Finish = bestFinish
	slot.Time = bestTime
	slot.Power = cl.PowerActive
	slot.Energy = energy.CommEnergy(cl.PowerActive, bestTime)
	sc.Comms[e.ID] = slot
	if bestFinish > sc.Makespan {
		sc.Makespan = bestFinish
	}
	return bestFinish
}
