package sched

import (
	"math/rand"

	"momosyn/internal/model"
)

// Refine improves a mode's schedule by stochastic priority perturbation,
// the schedule-optimisation idea of the authors' LOPOCOS inner loop: the
// list scheduler's mobility-based priorities are good but not optimal
// under resource contention, so Refine re-runs the scheduler with
// perturbed task priorities and keeps the best result. The cost function
// is lexicographic: lateness first (feasibility), then makespan (slack for
// DVS), then dynamic energy.
//
// The baseline schedule (unperturbed priorities) is always a candidate, so
// Refine never returns something worse than ListSchedule.
func Refine(s *model.System, modeID model.ModeID, mapping model.Mapping, cores CoreProvider, mob *Mobility, iterations int, rng *rand.Rand) (*Schedule, error) {
	if mob == nil {
		var err error
		mob, err = ComputeMobility(s, modeID, mapping)
		if err != nil {
			return nil, err
		}
	}
	best, err := ListSchedule(s, modeID, mapping, cores, mob)
	if err != nil {
		return nil, err
	}
	bestCost := scheduleCost(s, best)

	n := len(s.App.Mode(modeID).Graph.Tasks)
	if n < 2 || iterations <= 0 {
		return best, nil
	}
	// Perturbed mobility copy reused across iterations.
	pm := &Mobility{
		ASAP: append([]float64(nil), mob.ASAP...),
		ALAP: make([]float64, n),
		Exec: mob.Exec,
	}
	period := s.App.Mode(modeID).Period
	for it := 0; it < iterations; it++ {
		// Jitter the urgency (ALAP) of every task by up to ±15% of the
		// period; small jitters explore tie-breaks, large ones reorder
		// contended tasks.
		scale := 0.03 + 0.12*rng.Float64()
		for i := 0; i < n; i++ {
			pm.ALAP[i] = mob.ALAP[i] + (rng.Float64()*2-1)*scale*period
		}
		cand, err := ListSchedule(s, modeID, mapping, cores, pm)
		if err != nil {
			return nil, err
		}
		if c := scheduleCost(s, cand); c.less(bestCost) {
			best, bestCost = cand, c
		}
	}
	return best, nil
}

// cost is the lexicographic schedule quality used by Refine.
type cost struct {
	lateness, makespan, energy float64
}

//mm:noalloc
func scheduleCost(s *model.System, sc *Schedule) cost {
	return cost{
		lateness: sc.Lateness(s) + 1e3*float64(sc.Unroutable),
		makespan: sc.Makespan,
		energy:   sc.DynamicEnergy(),
	}
}

//mm:noalloc
func (a cost) less(b cost) bool {
	const eps = 1e-12
	if a.lateness < b.lateness-eps {
		return true
	}
	if a.lateness > b.lateness+eps {
		return false
	}
	if a.makespan < b.makespan-eps {
		return true
	}
	if a.makespan > b.makespan+eps {
		return false
	}
	return a.energy < b.energy-eps
}
