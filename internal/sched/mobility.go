// Package sched implements the inner optimisation loop of the multi-mode
// co-synthesis: per-mode ASAP/ALAP mobility analysis, mobility-driven list
// scheduling of tasks onto software processors and hardware core instances,
// and greedy communication mapping onto communication links.
package sched

import (
	"math"

	"momosyn/internal/energy"
	"momosyn/internal/model"
)

// Mobility holds the ASAP/ALAP analysis of one mode under a fixed task
// mapping. Times ignore resource contention (infinite-resource bounds) but
// include inter-PE communication delays, so they are valid lower/upper
// bounds for the list scheduler's priorities.
type Mobility struct {
	ASAP []float64 // earliest start per task
	ALAP []float64 // latest start per task (w.r.t. the mode period)
	Exec []float64 // nominal execution time per task under the mapping
}

// Slack returns ALAP-ASAP of the task; small values identify urgent tasks.
//
//mm:noalloc
func (m *Mobility) Slack(t model.TaskID) float64 { return m.ALAP[t] - m.ASAP[t] }

// commBound returns the infinite-resource communication delay of an edge:
// zero when both endpoints share a PE, otherwise the fastest connecting
// link's transfer time. Unroutable edges get a large finite delay so the
// analysis stays total; the scheduler reports them as infeasible. The link
// scan is inlined rather than calling Arch.LinksBetween so the per-edge
// analysis never allocates an ID slice.
//
//mm:noalloc
func commBound(s *model.System, e *model.Edge, srcPE, dstPE model.PEID, period float64) float64 {
	if srcPE == dstPE {
		return 0
	}
	best := math.Inf(1)
	for _, cl := range s.Arch.CLs {
		if !cl.Connects(srcPE, dstPE) {
			continue
		}
		if t := energy.CommTime(e.Bytes, cl); t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		return unroutablePenalty(period)
	}
	return best
}

// unroutablePenalty is the surrogate delay charged for a communication
// between unconnected PEs; it is large relative to the mode period so such
// mappings score badly but remain comparable.
//
//mm:noalloc
func unroutablePenalty(period float64) float64 { return 10 * period }

// execTime returns the nominal execution time of the task on its mapped PE.
//
//mm:noalloc
func execTime(s *model.System, mode *model.Mode, t model.TaskID, pe model.PEID) float64 {
	task := mode.Graph.Task(t)
	im, ok := s.Lib.Type(task.Type).ImplOn(pe)
	if !ok {
		// Invalid mappings are repaired by the synthesis layer; charge a
		// large surrogate so evaluation stays total if one slips through.
		return unroutablePenalty(mode.Period)
	}
	return im.Time
}

// ComputeMobility runs ASAP and ALAP passes for the mode under the mapping.
// The ALAP pass anchors sink tasks at their effective deadlines
// min(deadline, period).
func ComputeMobility(s *model.System, modeID model.ModeID, mapping model.Mapping) (*Mobility, error) {
	mode := s.App.Mode(modeID)
	g := mode.Graph
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.Tasks)
	mob := &Mobility{
		ASAP: make([]float64, n),
		ALAP: make([]float64, n),
		Exec: make([]float64, n),
	}
	mob.fill(s, mode, modeID, mapping, order)
	return mob, nil
}

// fill runs the ASAP and ALAP passes into the presized buffers of m. Split
// from ComputeMobility so everything after buffer setup is provably
// allocation-free.
//
//mm:noalloc
func (m *Mobility) fill(s *model.System, mode *model.Mode, modeID model.ModeID, mapping model.Mapping, order []model.TaskID) {
	g := mode.Graph
	for t := range g.Tasks {
		m.Exec[t] = execTime(s, mode, model.TaskID(t), mapping[modeID][t])
	}
	// ASAP forward pass.
	for _, t := range order {
		start := 0.0
		for _, eid := range g.In(t) {
			e := g.Edge(eid)
			c := commBound(s, e, mapping[modeID][e.Src], mapping[modeID][e.Dst], mode.Period)
			if v := m.ASAP[e.Src] + m.Exec[e.Src] + c; v > start {
				start = v
			}
		}
		m.ASAP[t] = start
	}
	// ALAP backward pass.
	for t := range g.Tasks {
		task := g.Task(model.TaskID(t))
		m.ALAP[t] = task.EffectiveDeadline(mode.Period) - m.Exec[t]
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		latest := m.ALAP[t]
		for _, eid := range g.Out(t) {
			e := g.Edge(eid)
			c := commBound(s, e, mapping[modeID][e.Src], mapping[modeID][e.Dst], mode.Period)
			if v := m.ALAP[e.Dst] - c - m.Exec[t]; v < latest {
				latest = v
			}
		}
		m.ALAP[t] = latest
	}
}

// MaxOverlap returns, for the given tasks (with their ASAP/ALAP windows
// extended by execution time), the maximum number of pairwise-overlapping
// execution windows. It estimates how many tasks of one type may want to
// run in parallel — the demand used for replica core allocation
// (paper section 4.1, "ImplementHWcores").
func (m *Mobility) MaxOverlap(tasks []model.TaskID) int {
	if len(tasks) <= 1 {
		return len(tasks)
	}
	type ev struct {
		t     float64
		delta int
	}
	var evs []ev
	for _, t := range tasks {
		start := m.ASAP[t]
		end := m.ALAP[t] + m.Exec[t]
		if end <= start {
			end = start + m.Exec[t]
		}
		evs = append(evs, ev{start, +1}, ev{end, -1})
	}
	// Sort events; ends before starts at equal time so touching windows do
	// not count as overlapping.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := evs[j-1], evs[j]
			before := b.t < a.t
			if !before && !(a.t < b.t) { // equal times: order by delta
				before = b.delta < a.delta
			}
			if !before {
				break
			}
			evs[j-1], evs[j] = b, a
		}
	}
	cur, best := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	return best
}
