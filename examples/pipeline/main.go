// Pipeline walks the complete tool flow through the public API, end to
// end: parse a specification from text, synthesise an implementation with
// DVS, persist the mapping, render an SVG Gantt chart of the busiest mode,
// and validate the implementation by simulating an hour of usage.
//
// Artifacts land in a temporary directory whose path is printed.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"momosyn/internal/ga"
	"momosyn/internal/gantt"
	"momosyn/internal/sim"
	"momosyn/internal/specio"
	"momosyn/internal/synth"
)

// spec is a compact three-mode audio gadget: a dominant standby mode, a
// playback mode and a rare firmware-update mode, on a DVS CPU plus a DSP
// ASIC.
const spec = `
system gadget
pe cpu class=gpp vmax=3.3 vt=0.8 static=0.2mW levels=1.2,1.8,2.5,3.3
pe dsp class=asic area=700 static=0.4mW
cl bus bw=4MB/s active=1mW static=0.05mW pes=cpu,dsp

type poll
impl poll cpu time=300us power=6mW
type dec
impl dec cpu time=9ms power=18mW
impl dec dsp time=250us power=14mW area=400
type eq
impl eq cpu time=5ms power=15mW
impl eq dsp time=180us power=11mW area=280
type out
impl out cpu time=800us power=8mW
type verify
impl verify cpu time=12ms power=16mW
impl verify dsp time=400us power=12mW area=350
type flash
impl flash cpu time=8ms power=10mW

mode standby prob=0.85 period=40ms
task standby p0 type=poll
task standby p1 type=poll
edge standby p0 p1 bytes=64

mode play prob=0.14 period=20ms
task play fetch type=poll
task play decode type=dec
task play tune type=eq
task play render type=out
edge play fetch decode bytes=512
edge play decode tune bytes=4096
edge play tune render bytes=4096

mode update prob=0.01 period=50ms
task update check type=verify
task update write type=flash
edge update check write bytes=2048

transition standby play max=20ms
transition play standby max=20ms
transition standby update max=50ms
transition update standby max=50ms
`

func main() {
	dir, err := os.MkdirTemp("", "momosyn-pipeline-")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("artifacts in", dir)

	// 1. Parse the specification.
	sys, err := specio.Read(strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: %d modes, %d tasks\n",
		sys.App.Name, len(sys.App.Modes), sys.App.TotalTasks())

	// 2. Synthesise with DVS.
	res, err := synth.Synthesize(sys, synth.Options{
		UseDVS: true,
		GA:     ga.Config{PopSize: 32, MaxGenerations: 120, Stagnation: 40},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised: %.4f mW average, feasible=%v\n",
		res.Best.AvgPower*1e3, res.Best.Feasible())

	// 3. Persist the mapping.
	mapPath := filepath.Join(dir, "gadget.map")
	if err := writeTo(mapPath, func(f *os.File) error {
		return specio.WriteMapping(f, sys, res.Best.Mapping)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("saved mapping to", mapPath)

	// 4. Render the playback mode's schedule.
	play := sys.App.ModeByName("play")
	svgPath := filepath.Join(dir, "play.svg")
	if err := writeTo(svgPath, func(f *os.File) error {
		return gantt.WriteSVG(f, sys, play.ID, res.Best.Schedules[play.ID])
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rendered", svgPath)
	if err := gantt.WriteText(os.Stdout, sys, play.ID, res.Best.Schedules[play.ID], 72); err != nil {
		log.Fatal(err)
	}

	// 5. Simulate an hour of usage and compare against the objective.
	trace, err := sim.GenerateTrace(sys.App, sim.TraceConfig{
		Horizon: 3600, MeanDwell: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sim.Run(sys, res.Best, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %.0f s (%d mode switches): %.4f mW measured vs %.4f mW objective\n",
		out.Duration, out.TransitionCount, out.AveragePower()*1e3, res.Best.AvgPower*1e3)
	for i, m := range sys.App.Modes {
		fmt.Printf("  %-8s Ψ=%.2f realised %.3f\n", m.Name, m.Prob, out.Residency[i])
	}
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
