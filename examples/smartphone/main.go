// Smartphone runs the paper's real-life benchmark end to end: the
// eight-mode smart phone (GSM phone + MP3 player + digital camera) on a
// DVS-enabled GPP with two ASICs, reproducing the four cells of paper
// Table 3 — synthesis with and without DVS, each with and without
// consideration of the mode execution probabilities.
//
//	go run ./examples/smartphone             # quick (1 run per cell)
//	go run ./examples/smartphone -reps 10    # smoother averages
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"momosyn/internal/bench"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

func main() {
	reps := flag.Int("reps", 3, "synthesis runs averaged per table cell")
	flag.Parse()

	sys, err := bench.SmartPhone()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Smart phone OMSM (paper Fig. 1a):")
	for _, m := range sys.App.Modes {
		fmt.Printf("  %-12s prob %.2f  period %4.0f ms  %2d tasks %3d edges\n",
			m.Name, m.Prob, m.Period*1e3, len(m.Graph.Tasks), len(m.Graph.Edges))
	}
	fmt.Printf("architecture: ")
	for i, pe := range sys.Arch.PEs {
		if i > 0 {
			fmt.Print(" + ")
		}
		fmt.Print(pe.Name)
		if pe.DVS {
			fmt.Print("(DVS)")
		}
	}
	fmt.Printf(" on %s\n\n", sys.Arch.CLs[0].Name)

	cfg := ga.Config{PopSize: 64, MaxGenerations: 300, Stagnation: 80}
	cell := func(useDVS, neglect bool) (float64, time.Duration) {
		sum, dur := 0.0, time.Duration(0)
		for r := 0; r < *reps; r++ {
			res, err := synth.Synthesize(sys, synth.Options{
				UseDVS:               useDVS,
				NeglectProbabilities: neglect,
				GA:                   cfg,
				Seed:                 int64(1 + r*7919),
			})
			if err != nil {
				log.Fatal(err)
			}
			sum += res.Best.AvgPower
			dur += res.Elapsed
		}
		return sum / float64(*reps), dur / time.Duration(*reps)
	}

	fmt.Printf("Table 3 (averaged over %d runs per cell):\n", *reps)
	fmt.Printf("%-22s | %12s %8s | %12s %8s | %7s\n",
		"Smart phone", "w/o prob.", "CPU", "with prob.", "CPU", "Reduc.")
	for _, useDVS := range []bool{false, true} {
		pn, tn := cell(useDVS, true)
		pp, tp := cell(useDVS, false)
		name := "w/o DVS"
		if useDVS {
			name = "with DVS"
		}
		fmt.Printf("%-22s | %9.4f mW %7.1fs | %9.4f mW %7.1fs | %6.2f%%\n",
			name, pn*1e3, tn.Seconds(), pp*1e3, tp.Seconds(), (pn-pp)/pn*100)
	}

	// Show where the proposed DVS implementation spends its power.
	res, err := synth.Synthesize(sys, synth.Options{UseDVS: true, GA: cfg, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBest DVS implementation: %.4f mW average, feasible=%v\n",
		res.Best.AvgPower*1e3, res.Best.Feasible())
	fmt.Println("hardware cores allocated:")
	for _, pe := range sys.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		fmt.Printf("  %s:", pe.Name)
		for _, tt := range sys.Lib.Types {
			n := 0
			for m := range sys.App.Modes {
				if k := res.Best.Alloc.Instances(model.ModeID(m), pe.ID, tt.ID); k > n {
					n = k
				}
			}
			if n > 0 {
				fmt.Printf(" %s", tt.Name)
				if n > 1 {
					fmt.Printf("x%d", n)
				}
			}
		}
		fmt.Println()
	}
}
