// Multiimpl demonstrates the paper's second motivational example (Fig. 3):
// implementing the same task type twice — in hardware for one mode and in
// software for another — can beat hardware resource sharing, because the
// mode that keeps everything in software can shut down the hardware
// component and its bus entirely.
//
// The example evaluates both hand-built mappings, then lets exhaustive
// search and the GA confirm that the duplicated implementation is the true
// optimum under the system's usage profile.
//
//	go run ./examples/multiimpl
package main

import (
	"fmt"
	"log"

	"momosyn/internal/bench"
	"momosyn/internal/ga"
	"momosyn/internal/synth"
)

func main() {
	sys, err := bench.Figure3System()
	if err != nil {
		log.Fatal(err)
	}
	ev := synth.NewEvaluator(sys, false)

	shared, err := ev.Evaluate(bench.Figure3MappingShared(sys))
	if err != nil {
		log.Fatal(err)
	}
	dup, err := ev.Evaluate(bench.Figure3MappingDuplicated(sys))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Task type A appears in both modes; only PE1 (ASIC) can host it")
	fmt.Println("in hardware. Two implementation strategies:")
	fmt.Println()
	show := func(name string, e *synth.Evaluation) {
		fmt.Printf("%s: average power %.4f mW\n", name, e.AvgPower*1e3)
		for m, mode := range sys.App.Modes {
			mp := e.ModePowers[m]
			fmt.Printf("  mode %s (prob %.1f, period %s): dynamic %.4f mW, static %.4f mW\n",
				mode.Name, mode.Prob, fmtTime(mode.Period), mp.Dynamic()*1e3, mp.StaticPower*1e3)
		}
		fmt.Println()
	}
	show("Fig. 3b - single hardware core, shared by both modes", shared)
	show("Fig. 3c - type A duplicated (hardware in O1, software in O2)", dup)

	fmt.Printf("Duplicating the implementation saves %.1f%%: during mode O2 the\n",
		(shared.AvgPower-dup.AvgPower)/shared.AvgPower*100)
	fmt.Println("ASIC and the bus are powered down, eliminating their static power")
	fmt.Println("for 70% of the operational time.")
	fmt.Println()

	// Confirm with exhaustive search and with the GA that Fig. 3c is the
	// global optimum.
	best, err := synth.Exhaustive(nil, sys, false, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive optimum: %.4f mW (matches Fig. 3c: %v)\n",
		best.AvgPower*1e3, best.Mapping.Equal(bench.Figure3MappingDuplicated(sys)))

	res, err := synth.Synthesize(sys, synth.Options{
		GA:   ga.Config{PopSize: 16, MaxGenerations: 60, Stagnation: 20},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GA co-synthesis:    %.4f mW (matches Fig. 3c: %v)\n",
		res.Best.AvgPower*1e3, res.Best.Mapping.Equal(bench.Figure3MappingDuplicated(sys)))
}

func fmtTime(s float64) string {
	return fmt.Sprintf("%gms", s*1e3)
}
