// Tradeoff explores the power/area design space of the smart phone with
// the NSGA-II extension: instead of treating the ASIC areas as hard
// constraints, hardware utilisation becomes a second objective, and the
// resulting Pareto front shows what every extra cell of silicon buys in
// average power — the architectural question the paper's authors explore
// in their LOPOCOS work.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"strings"

	"momosyn/internal/bench"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

func main() {
	sys, err := bench.SmartPhone()
	if err != nil {
		log.Fatal(err)
	}

	front, err := synth.Pareto(sys, synth.ParetoOptions{
		UseDVS: true,
		GA:     ga.Config{PopSize: 64, MaxGenerations: 120},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Power/area Pareto front of the smart phone (DVS enabled).")
	fmt.Println("AreaFrac is the worst-case hardware utilisation; > 1.00 would")
	fmt.Println("need a larger die than the specified ASICs provide.")
	fmt.Println()
	fmt.Printf("%10s %10s %9s  %s\n", "power", "area", "feasible", "utilisation")
	for _, pt := range front {
		if !pt.Feasible {
			continue
		}
		bar := strings.Repeat("=", int(pt.AreaFrac*30+0.5))
		fmt.Printf("%8.4f mW %9.1f%% %9v  |%s\n",
			pt.Power*1e3, pt.AreaFrac*100, pt.Feasible, bar)
	}

	// Show the hardware content of the extremes.
	var cheapest, leanest *synth.ParetoPoint
	for i := range front {
		if !front[i].Feasible {
			continue
		}
		if cheapest == nil || front[i].Power < cheapest.Power {
			cheapest = &front[i]
		}
		if leanest == nil || front[i].AreaFrac < leanest.AreaFrac {
			leanest = &front[i]
		}
	}
	if cheapest == nil {
		log.Fatal("no feasible point on the front")
	}
	fmt.Println()
	describe(sys, "lowest power", cheapest)
	describe(sys, "least silicon", leanest)
}

func describe(sys *model.System, tag string, pt *synth.ParetoPoint) {
	fmt.Printf("%s: %.4f mW at %.0f%% utilisation; hardware tasks per mode:",
		tag, pt.Power*1e3, pt.AreaFrac*100)
	for m, mode := range sys.App.Modes {
		n := 0
		for ti := range mode.Graph.Tasks {
			if sys.Arch.PE(pt.Mapping[m][ti]).Class.IsHardware() {
				n++
			}
		}
		fmt.Printf(" %d", n)
	}
	fmt.Println()
}
