// Quickstart: build a small multi-mode system with the model builder, run
// the co-synthesis, and inspect the result.
//
// The system is the paper's first motivational example (Fig. 2): two
// operational modes of three tasks each, a GPP plus a 600-cell ASIC, and a
// heavily skewed usage profile (10% / 90%). The probability-aware synthesis
// finds the mapping that puts the dominant mode's tasks into hardware,
// cutting the average power by 41% against the probability-neglecting
// optimum.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

func main() {
	sys, err := buildSystem()
	if err != nil {
		log.Fatal(err)
	}

	// Synthesise twice: once ignoring the usage profile (the baseline
	// co-synthesis would do this), once considering it.
	opts := synth.Options{
		GA:   ga.Config{PopSize: 24, MaxGenerations: 80, Stagnation: 25},
		Seed: 1,
	}
	opts.NeglectProbabilities = true
	baseline, err := synth.Synthesize(sys, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.NeglectProbabilities = false
	proposed, err := synth.Synthesize(sys, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig. 2 motivational example -- both implementations judged under")
	fmt.Println("the true usage profile (mode O1: 10%, mode O2: 90%):")
	fmt.Printf("  probability-neglecting synthesis: %7.4f mWs\n", baseline.Best.AvgPower*1e3)
	fmt.Printf("  probability-aware synthesis:      %7.4f mWs\n", proposed.Best.AvgPower*1e3)
	fmt.Printf("  reduction: %.1f%%  (paper reports 41%%)\n\n",
		(baseline.Best.AvgPower-proposed.Best.AvgPower)/baseline.Best.AvgPower*100)

	for _, r := range []struct {
		name string
		res  *synth.Result
	}{{"neglecting", baseline}, {"proposed", proposed}} {
		fmt.Printf("%s mapping:\n", r.name)
		for m, mode := range sys.App.Modes {
			fmt.Printf("  %s:", mode.Name)
			for ti, task := range mode.Graph.Tasks {
				pe := sys.Arch.PE(r.res.Best.Mapping[m][ti])
				fmt.Printf("  %s->%s", task.Name, pe.Name)
			}
			fmt.Println()
		}
	}
}

// buildSystem assembles the paper's section 2.3 example through the public
// builder API: the task-type table with software and hardware
// implementation alternatives, the two-PE architecture and the two modes.
func buildSystem() (*model.System, error) {
	b := model.NewBuilder("quickstart")
	b.AddPE(model.PE{Name: "PE0", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "PE1", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 600})
	b.AddCL(model.CL{Name: "CL0", BytesPerSec: 1e6}, "PE0", "PE1")

	// name, SW time (ms) and energy (mWs); HW time, energy and core area.
	types := []struct {
		name     string
		swT, swE float64
		hwT, hwE float64
		area     int
	}{
		{"A", 20, 10, 2.0, 0.010, 240},
		{"B", 28, 14, 2.2, 0.012, 300},
		{"C", 32, 16, 1.6, 0.023, 275},
		{"D", 26, 13, 3.1, 0.047, 245},
		{"E", 30, 15, 1.8, 0.015, 210},
		{"F", 24, 14, 2.2, 0.032, 280},
	}
	for _, tt := range types {
		b.AddType(tt.name,
			model.ImplSpec{PE: "PE0", Time: tt.swT * 1e-3, Power: tt.swE / tt.swT},
			model.ImplSpec{PE: "PE1", Time: tt.hwT * 1e-3, Power: tt.hwE / tt.hwT, Area: tt.area},
		)
	}

	b.BeginMode("O1", 0.1, 1.0)
	b.AddTask("t1", "A", 0)
	b.AddTask("t2", "B", 0)
	b.AddTask("t3", "C", 0)
	b.AddEdge("t1", "t2", 0)
	b.AddEdge("t2", "t3", 0)

	b.BeginMode("O2", 0.9, 1.0)
	b.AddTask("t4", "D", 0)
	b.AddTask("t5", "E", 0)
	b.AddTask("t6", "F", 0)
	b.AddEdge("t4", "t5", 0)
	b.AddEdge("t5", "t6", 0)

	b.AddTransition("O1", "O2", 0)
	b.AddTransition("O2", "O1", 0)
	return b.Finish()
}
