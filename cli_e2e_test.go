// End-to-end tests of the command-line tools: build the binaries once and
// drive the full flow — generate a spec, synthesise it, save the mapping,
// replay it through the simulator, and render charts — asserting on the
// observable outputs. Run with -short to skip.
package momosyn_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every cmd/ binary into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"mmgen", "mmsynth", "mmbench", "mmsim"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	spec := filepath.Join(work, "inst.spec")
	mapping := filepath.Join(work, "inst.map")
	trace := filepath.Join(work, "inst.trace")

	// Generate a spec file.
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)
	if fi, err := os.Stat(spec); err != nil || fi.Size() == 0 {
		t.Fatalf("spec not written: %v", err)
	}

	// Statistics view parses and reports the same instance.
	stats := run(t, bin, "mmgen", "-seed", "5", "-stats")
	if !strings.Contains(stats, "system gen5") {
		t.Errorf("stats output malformed:\n%s", stats)
	}

	// DOT view.
	dot := run(t, bin, "mmgen", "-seed", "5", "-dot")
	if !strings.HasPrefix(dot, "digraph") {
		t.Errorf("dot output malformed: %.60s", dot)
	}

	// Synthesise with a reduced GA; save the mapping and SVG charts.
	out := run(t, bin, "mmsynth", "-spec", spec, "-dvs",
		"-pop", "16", "-gens", "40", "-stagnation", "15",
		"-save", mapping, "-svg", filepath.Join(work, "chart"))
	if !strings.Contains(out, "feasible    : true") {
		t.Fatalf("synthesis not feasible:\n%s", out)
	}
	if fi, err := os.Stat(mapping); err != nil || fi.Size() == 0 {
		t.Fatalf("mapping not saved: %v", err)
	}
	svgs, _ := filepath.Glob(filepath.Join(work, "chart-*.svg"))
	if len(svgs) == 0 {
		t.Error("no SVG charts written")
	}

	// Re-evaluate the saved mapping: identical power, no GA run.
	out2 := run(t, bin, "mmsynth", "-spec", spec, "-dvs", "-mapping", mapping)
	p1 := extractLine(out, "average power")
	p2 := extractLine(out2, "average power")
	if p1 == "" || p1 != p2 {
		t.Errorf("saved mapping power %q != synthesis power %q", p2, p1)
	}

	// Simulate the saved mapping over a recorded trace; replaying the
	// trace must reproduce the measured power exactly.
	simOut := run(t, bin, "mmsim", "-spec", spec, "-dvs", "-mapping", mapping,
		"-horizon", "60", "-save-trace", trace)
	if !strings.Contains(simOut, "simulated average power") {
		t.Fatalf("simulation output malformed:\n%s", simOut)
	}
	replay := run(t, bin, "mmsim", "-spec", spec, "-dvs", "-mapping", mapping,
		"-trace", trace)
	s1 := extractLine(simOut, "simulated average power")
	s2 := extractLine(replay, "simulated average power")
	if s1 == "" || s1 != s2 {
		t.Errorf("trace replay power %q != original %q", s2, s1)
	}

	// The figures reproduce the paper's exact numbers.
	figs := run(t, bin, "mmbench", "-figures")
	if !strings.Contains(figs, "26.7158") || !strings.Contains(figs, "15.7423") {
		t.Errorf("figure reproduction missing the paper's numbers:\n%s", figs)
	}
}

// extractLine returns the trimmed remainder of the first line containing
// the prefix.
func extractLine(out, prefix string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, prefix) {
			return strings.TrimSpace(line)
		}
	}
	return ""
}
