// End-to-end tests of the command-line tools: build the binaries once and
// drive the full flow — generate a spec, synthesise it, save the mapping,
// replay it through the simulator, and render charts — asserting on the
// observable outputs. Run with -short to skip.
package momosyn_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTools compiles every cmd/ binary into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"mmgen", "mmsynth", "mmbench", "mmsim", "mmlint", "mmtrace", "mmserved"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	spec := filepath.Join(work, "inst.spec")
	mapping := filepath.Join(work, "inst.map")
	trace := filepath.Join(work, "inst.trace")

	// Generate a spec file.
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)
	if fi, err := os.Stat(spec); err != nil || fi.Size() == 0 {
		t.Fatalf("spec not written: %v", err)
	}

	// Statistics view parses and reports the same instance.
	stats := run(t, bin, "mmgen", "-seed", "5", "-stats")
	if !strings.Contains(stats, "system gen5") {
		t.Errorf("stats output malformed:\n%s", stats)
	}

	// DOT view.
	dot := run(t, bin, "mmgen", "-seed", "5", "-dot")
	if !strings.HasPrefix(dot, "digraph") {
		t.Errorf("dot output malformed: %.60s", dot)
	}

	// Synthesise with a reduced GA; save the mapping and SVG charts.
	out := run(t, bin, "mmsynth", "-spec", spec, "-dvs",
		"-pop", "16", "-gens", "40", "-stagnation", "15",
		"-save", mapping, "-svg", filepath.Join(work, "chart"))
	if !strings.Contains(out, "feasible    : true") {
		t.Fatalf("synthesis not feasible:\n%s", out)
	}
	if fi, err := os.Stat(mapping); err != nil || fi.Size() == 0 {
		t.Fatalf("mapping not saved: %v", err)
	}
	svgs, _ := filepath.Glob(filepath.Join(work, "chart-*.svg"))
	if len(svgs) == 0 {
		t.Error("no SVG charts written")
	}

	// Re-evaluate the saved mapping: identical power, no GA run.
	out2 := run(t, bin, "mmsynth", "-spec", spec, "-dvs", "-mapping", mapping)
	p1 := extractLine(out, "average power")
	p2 := extractLine(out2, "average power")
	if p1 == "" || p1 != p2 {
		t.Errorf("saved mapping power %q != synthesis power %q", p2, p1)
	}

	// Simulate the saved mapping over a recorded trace; replaying the
	// trace must reproduce the measured power exactly.
	simOut := run(t, bin, "mmsim", "-spec", spec, "-dvs", "-mapping", mapping,
		"-horizon", "60", "-save-trace", trace)
	if !strings.Contains(simOut, "simulated average power") {
		t.Fatalf("simulation output malformed:\n%s", simOut)
	}
	replay := run(t, bin, "mmsim", "-spec", spec, "-dvs", "-mapping", mapping,
		"-trace", trace)
	s1 := extractLine(simOut, "simulated average power")
	s2 := extractLine(replay, "simulated average power")
	if s1 == "" || s1 != s2 {
		t.Errorf("trace replay power %q != original %q", s2, s1)
	}

	// The figures reproduce the paper's exact numbers.
	figs := run(t, bin, "mmbench", "-figures")
	if !strings.Contains(figs, "26.7158") || !strings.Contains(figs, "15.7423") {
		t.Errorf("figure reproduction missing the paper's numbers:\n%s", figs)
	}
}

// TestCLIGracefulInterrupt drives the run-control path end to end: a long
// synthesis is interrupted with SIGINT, must exit 0 with a best-so-far
// report and a checkpoint on disk, and the checkpoint must then accept a
// -resume run (which is interrupted the same way).
func TestCLIGracefulInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	spec := filepath.Join(work, "inst.spec")
	ckpt := filepath.Join(work, "run.ckpt")
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)

	// The run is sized to last minutes if nothing stops it; the test
	// interrupts it as soon as the first checkpoint hits the disk.
	longArgs := []string{"-spec", spec, "-dvs", "-pop", "32",
		"-gens", "1000000", "-stagnation", "1000000",
		"-checkpoint", ckpt, "-checkpoint-every", "1"}

	out := interrupt(t, filepath.Join(bin, "mmsynth"), longArgs, func() bool {
		_, err := os.Stat(ckpt)
		return err == nil
	})
	if !strings.Contains(out, "status      : partial") {
		t.Errorf("interrupted run did not report partial status:\n%s", out)
	}
	if extractLine(out, "average power") == "" {
		t.Errorf("interrupted run did not report the best-so-far power:\n%s", out)
	}

	// Resume from the interrupted run's closing checkpoint. Progress shows
	// as the checkpoint file being rewritten; then interrupt again.
	before, err := os.Stat(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumeArgs := append(append([]string(nil), longArgs...), "-resume")
	out = interrupt(t, filepath.Join(bin, "mmsynth"), resumeArgs, func() bool {
		fi, err := os.Stat(ckpt)
		return err == nil && fi.ModTime().After(before.ModTime())
	})
	if !strings.Contains(out, "status      : partial") || extractLine(out, "average power") == "" {
		t.Errorf("resumed run did not continue to a best-so-far report:\n%s", out)
	}
}

// interrupt starts the binary, waits for ready() to report observable
// progress, sends SIGINT and asserts a clean exit 0, returning the combined
// output.
func interrupt(t *testing.T, bin string, args []string, ready func() bool) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	for !ready() {
		if ctx.Err() != nil {
			cmd.Process.Kill()
			t.Fatalf("no observable progress before timeout:\n%s", buf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("interrupted run must exit 0, got %v:\n%s", err, buf.String())
	}
	return buf.String()
}

// TestCLIUsageErrorsExit2 asserts the exit-code discipline: usage mistakes
// are distinguishable (exit 2) from runtime failures (exit 1).
func TestCLIUsageErrorsExit2(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	cases := [][]string{
		{"-resume"},                           // -resume without -checkpoint
		{"-checkpoint-every", "0"},            // non-positive interval
		{"-mapping", "x", "-checkpoint", "y"}, // incompatible modes
		{"unexpected", "positional"},
	}
	for _, args := range cases {
		cmd := exec.Command(filepath.Join(bin, "mmsynth"), args...)
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("mmsynth %v: err = %v, want exit code 2", args, err)
		}
	}

	// A runtime failure (unreadable spec) is exit 1, not 2.
	cmd := exec.Command(filepath.Join(bin, "mmsynth"), "-spec", "/no/such/file.spec")
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Errorf("missing spec: err = %v, want exit code 1", err)
	}
}

// runExit runs the tool and returns its combined output and exit code;
// extra environment entries (KEY=VALUE) are appended to the inherited one.
func runExit(t *testing.T, dir, tool string, env []string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestCLICertifyExitCodes pins the full exit-code contract around the
// certifier: clean -certify runs exit 0, injected faults exit 4, honest
// infeasibility stays 3 (with or without -certify), corrupted inputs stay
// 1, and usage errors stay 2.
func TestCLICertifyExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	spec := filepath.Join(work, "inst.spec")
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)
	gaArgs := []string{"-pop", "16", "-gens", "40", "-stagnation", "15"}

	// Clean certify run: exit 0 and a visible certification line.
	args := append([]string{"-spec", spec, "-dvs", "-certify"}, gaArgs...)
	out, code := runExit(t, bin, "mmsynth", nil, args...)
	if code != 0 || !strings.Contains(out, "certification: certified") {
		t.Fatalf("clean -certify run: exit %d, output:\n%s", code, out)
	}

	// Each injected fault class must be caught and exit 4.
	for _, class := range []string{"energy", "precedence", "area"} {
		out, code := runExit(t, bin, "mmsynth", []string{"MMSYNTH_FAULT_INJECT=" + class}, args...)
		if code != 4 {
			t.Errorf("fault %q: exit %d, want 4\n%s", class, code, out)
		}
		if !strings.Contains(out, "["+class+"]") {
			t.Errorf("fault %q: violation kind not reported:\n%s", class, out)
		}
	}
	// An unknown class is a runtime failure, not a silent pass.
	if _, code := runExit(t, bin, "mmsynth", []string{"MMSYNTH_FAULT_INJECT=bogus"}, args...); code != 1 {
		t.Errorf("unknown fault class: exit %d, want 1", code)
	}

	// Honest infeasibility: a deadline shorter than the only execution
	// time exits 3, and -certify agrees with the infeasibility claim.
	tight := filepath.Join(work, "tight.spec")
	tightSpec := "system tight\npe cpu class=gpp static=1mW\ncl bus bw=1MB/s pes=cpu\n" +
		"type t\nimpl t cpu time=10ms power=1mW\nmode m prob=1 period=20ms\ntask m a type=t deadline=1ms\n"
	if err := os.WriteFile(tight, []byte(tightSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := runExit(t, bin, "mmsynth", nil, "-spec", tight, "-pop", "8", "-gens", "5", "-stagnation", "3"); code != 3 {
		t.Errorf("infeasible run: exit %d, want 3", code)
	}
	out, code = runExit(t, bin, "mmsynth", nil, "-spec", tight, "-certify", "-pop", "8", "-gens", "5", "-stagnation", "3")
	if code != 3 {
		t.Errorf("infeasible -certify run: exit %d, want 3 (honest infeasibility certifies)\n%s", code, out)
	}

	// Corrupted inputs are runtime failures (exit 1) with a diagnostic.
	garbage := filepath.Join(work, "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("MMSYN-CKPT\x01not a gob payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runExit(t, bin, "mmsynth", nil,
		"-spec", spec, "-checkpoint", garbage, "-resume", "-pop", "8", "-gens", "5")
	if code != 1 || !strings.Contains(out, garbage) {
		t.Errorf("corrupt checkpoint: exit %d (want 1), path named: %v\n%s",
			code, strings.Contains(out, garbage), out)
	}
	binary := filepath.Join(work, "binary.spec")
	if err := os.WriteFile(binary, []byte{0x7f, 'E', 'L', 'F', 0, 1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := runExit(t, bin, "mmsynth", nil, "-spec", binary); code != 1 {
		t.Errorf("binary spec: exit %d, want 1", code)
	}

	// Usage errors remain exit 2 with -certify in the mix.
	if _, code := runExit(t, bin, "mmsynth", nil, "-certify", "-resume"); code != 2 {
		t.Errorf("usage error with -certify: exit %d, want 2", code)
	}

	// mmsim certifies the same implementation before simulating.
	out, code = runExit(t, bin, "mmsim", nil, "-spec", spec, "-dvs", "-certify",
		"-pop", "16", "-gens", "40", "-horizon", "30")
	if code != 0 || !strings.Contains(out, "certification") {
		t.Errorf("mmsim -certify: exit %d, output:\n%s", code, out)
	}
}

// TestCLILintExitCodes pins mmlint's exit-code contract: 0 on a clean
// tree, 1 when findings are reported, 2 on usage or load errors.
func TestCLILintExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)

	// The repository itself must stay clean.
	if out, code := runExit(t, bin, "mmlint", nil, "./..."); code != 0 {
		t.Errorf("mmlint ./...: exit %d, want 0; output:\n%s", code, out)
	}

	// The exhaustenum fixture carries a deliberate finding (its package sits
	// under testdata, so ./... above does not see it).
	out, code := runExit(t, bin, "mmlint", nil, "./internal/lint/testdata/src/exhaustenum")
	if code != 1 {
		t.Errorf("mmlint on fixture: exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "[exhaustenum]") || !strings.Contains(out, "not exhaustive") {
		t.Errorf("fixture finding not reported:\n%s", out)
	}

	// Restricting to an analyzer that has nothing to say there is clean.
	if out, code := runExit(t, bin, "mmlint", nil, "-only", "floateq", "./internal/lint/testdata/src/exhaustenum"); code != 0 {
		t.Errorf("mmlint -only floateq on fixture: exit %d, want 0; output:\n%s", code, out)
	}

	// Usage errors: unknown analyzer, unknown flag, unloadable pattern.
	if out, code := runExit(t, bin, "mmlint", nil, "-only", "nosuch", "./..."); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2; output:\n%s", code, out)
	}
	if out, code := runExit(t, bin, "mmlint", nil, "-bogus"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2; output:\n%s", code, out)
	}
	if out, code := runExit(t, bin, "mmlint", nil, "./no/such/tree"); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2; output:\n%s", code, out)
	}

	// -list names every analyzer and exits 0.
	out, code = runExit(t, bin, "mmlint", nil, "-list")
	if code != 0 {
		t.Errorf("mmlint -list: exit %d, want 0", code)
	}
	for _, name := range []string{"detrand", "ctxflow", "floateq", "guardgo", "exhaustenum"} {
		if !strings.Contains(out, name) {
			t.Errorf("mmlint -list missing %q:\n%s", name, out)
		}
	}
}

// TestCLIObservability drives the telemetry flow end to end: a traced
// mmsynth run must emit a schema-valid JSONL event stream and metrics
// snapshot (proven by mmtrace), report the instrumentation-only detail
// lines, and print the same synthesis result as an untraced run.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	spec := filepath.Join(work, "inst.spec")
	traceFile := filepath.Join(work, "run.jsonl")
	metricsFile := filepath.Join(work, "metrics.json")
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)

	gaArgs := []string{"-spec", spec, "-dvs", "-pop", "16", "-gens", "30", "-stagnation", "12"}
	plain := run(t, bin, "mmsynth", gaArgs...)
	traced := run(t, bin, "mmsynth",
		append([]string{"-trace", traceFile, "-metrics", metricsFile}, gaArgs...)...)

	// Identical synthesis, visible instrumentation detail.
	if p1, p2 := extractLine(plain, "average power"), extractLine(traced, "average power"); p1 != p2 {
		t.Errorf("tracing changed the synthesis: %q vs %q", p1, p2)
	}
	if extractLine(traced, "mutations") == "" || extractLine(traced, "phase times") == "" {
		t.Errorf("traced run missing instrumentation report lines:\n%s", traced)
	}
	if extractLine(plain, "mutations") != "" || extractLine(plain, "phase times") != "" {
		t.Errorf("untraced run printed instrumentation-only lines:\n%s", plain)
	}

	// mmtrace certifies both artefacts schema-valid (exit 0).
	out, code := runExit(t, bin, "mmtrace", nil, "-summary", "-metrics", metricsFile, traceFile)
	if code != 0 {
		t.Fatalf("mmtrace: exit %d\n%s", code, out)
	}
	for _, want := range []string{"schema-valid", "metrics snapshot valid", "mutation shutdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("mmtrace output missing %q:\n%s", want, out)
		}
	}

	// Invalid input exits 1, usage mistakes exit 2.
	bogus := filepath.Join(work, "bogus.jsonl")
	if err := os.WriteFile(bogus, []byte(`{"ev":"generation","t":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runExit(t, bin, "mmtrace", nil, bogus); code != 1 {
		t.Errorf("invalid trace: exit %d, want 1\n%s", code, out)
	}
	if out, code := runExit(t, bin, "mmtrace", nil); code != 2 {
		t.Errorf("no arguments: exit %d, want 2\n%s", code, out)
	}

	// mmbench: -progress heartbeat on stderr, bench_row events in the trace.
	benchTrace := filepath.Join(work, "bench.jsonl")
	benchOut := run(t, bin, "mmbench", "-table", "3", "-reps", "1",
		"-pop", "12", "-gens", "10", "-progress", "-trace", benchTrace)
	if !strings.Contains(benchOut, "progress: smartphone") {
		t.Errorf("no -progress heartbeat:\n%s", benchOut)
	}
	out, code = runExit(t, bin, "mmtrace", nil, "-summary", benchTrace)
	if code != 0 || !strings.Contains(out, "bench_row") {
		t.Errorf("bench trace invalid or missing bench_row events (exit %d):\n%s", code, out)
	}

	// mmsim keeps -trace for usage replay; the run-trace flag is -run-trace.
	simTrace := filepath.Join(work, "sim.jsonl")
	run(t, bin, "mmsim", "-spec", spec, "-dvs", "-pop", "12", "-gens", "15",
		"-horizon", "30", "-run-trace", simTrace)
	if out, code := runExit(t, bin, "mmtrace", nil, simTrace); code != 0 {
		t.Errorf("mmsim run-trace invalid: exit %d\n%s", code, out)
	}
}

// extractLine returns the trimmed remainder of the first line containing
// the prefix.
func extractLine(out, prefix string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, prefix) {
			return strings.TrimSpace(line)
		}
	}
	return ""
}
