# Developer entry points. `make ci` is what the CI workflow runs.

GO ?= go

.PHONY: all build test race vet fuzz-smoke bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short native-fuzzing burst over the spec reader; the minimiser is capped
# so large seed-corpus entries cannot stall the run (see scripts/ci.sh).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzRead -fuzztime=5s -fuzzminimizetime=5s ./internal/specio

bench:
	$(GO) test -bench=. -benchmem ./...

ci:
	./scripts/ci.sh
