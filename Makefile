# Developer entry points. `make ci` is what the CI workflow runs.

GO ?= go

.PHONY: all build test race vet lint bench-pins fuzz-smoke trace-smoke serve-smoke fleet-smoke cache-smoke perf-smoke certify bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Domain invariant checkers (determinism, cancellation, numeric safety,
# hot-path allocations, lock discipline, rename durability); see
# docs/LINT.md. Exit 1 means findings, exit 2 usage/load error. The first
# run covers the whole module including cmd/; the second names the
# analyzer framework explicitly so mmlint keeps linting itself even if
# the module-wide pattern is ever narrowed.
lint:
	$(GO) run ./cmd/mmlint ./...
	$(GO) run ./cmd/mmlint ./internal/lint/...

# Allocation pins: every //mm:noalloc function must run with
# testing.AllocsPerRun == 0, with 1:1 coverage between annotations and
# pins (see internal/allocpin and docs/LINT.md).
bench-pins:
	$(GO) test -run TestAllocPins -count=1 ./internal/sched ./internal/synth ./internal/dvs ./internal/ga ./internal/allocpin

# Short native-fuzzing bursts over the untrusted-input readers (spec files
# and checkpoints); the minimiser is capped so large seed-corpus entries
# cannot stall the run (see scripts/ci.sh).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzRead -fuzztime=5s -fuzzminimizetime=5s ./internal/specio
	$(GO) test -run='^$$' -fuzz=FuzzCanonical -fuzztime=5s -fuzzminimizetime=5s ./internal/specio
	$(GO) test -run='^$$' -fuzz=FuzzCheckpoint -fuzztime=5s -fuzzminimizetime=5s ./internal/runctl

# Observability smoke: a traced mmsynth run on a small spec, every JSONL
# event and the metrics snapshot validated by mmtrace. See
# docs/OBSERVABILITY.md.
trace-smoke:
	./scripts/trace_smoke.sh

# Job-service smoke: boot mmserved on a free port, drive one synthesis job
# over HTTP to a certified result, then SIGTERM and require a clean drain.
# See docs/SERVER.md.
serve-smoke:
	./scripts/serve_smoke.sh

# Fleet chaos smoke: two mmserved nodes on a shared fleet directory, four
# jobs, kill -9 one node mid-run; the survivor must finish every job
# exactly once with certified results. See docs/FLEET.md.
fleet-smoke:
	./scripts/fleet_chaos_smoke.sh

# Result-cache smoke: submit, resubmit (must hit, terminal at birth),
# corrupt the entry (must miss and re-run, never serve bad bytes), then a
# batch of 6 cells with 2 duplicates (must run exactly 4 jobs). See
# docs/CACHE.md.
cache-smoke:
	./scripts/cache_smoke.sh

# Oracle-check the whole benchmark suite: every spec through
# `mmsynth -certify` at a small GA budget, plus a fault-injection negative
# control that must exit 4. See docs/VERIFY.md.
certify:
	./scripts/certify.sh

# Performance-trajectory smoke: mmperf measures a small spec, its artifact
# must self-diff clean and flag a synthetic 10x regression; then one
# mmserved job with -lifecycle-trace/-access-log, validated through
# mmtrace -lifecycle. See docs/PERF.md.
perf-smoke:
	./scripts/perf_smoke.sh

bench:
	$(GO) test -bench=. -benchmem ./...

ci:
	./scripts/ci.sh
