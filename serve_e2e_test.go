// End-to-end test of the mmserved process: boot the real binary on a free
// port, drive the HTTP job API, and verify that SIGTERM drains the server
// cleanly with exit status 0. Run with -short to skip.
package momosyn_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServed boots mmserved on a kernel-assigned port and returns the
// running process plus the base URL scraped from its stdout announcement.
func startServed(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, "mmserved"),
		"-addr", "127.0.0.1:0", "-data", dataDir, "-workers", "2", "-drain", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("mmserved stderr:\n%s", stderr.String())
		}
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("mmserved announced nothing: %v\nstderr: %s", err, stderr.String())
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected announcement %q", line)
	}
	return cmd, strings.TrimSpace(line[i+len(marker):])
}

func TestServedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("mmserved end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()

	// A small specification the server can synthesise in well under a
	// second.
	spec := filepath.Join(work, "inst.spec")
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)
	specText, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(work, "data")
	cmd, base := startServed(t, bin, dataDir)
	client := &http.Client{Timeout: 10 * time.Second}

	// Liveness first: the announcement races ahead of the listener only if
	// something is broken, but check rather than assume.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Submit one quick job and poll it to certified completion.
	body, _ := json.Marshal(map[string]any{
		"spec": string(specText),
		"seed": 1,
		"ga":   map[string]int{"pop_size": 16, "max_generations": 40, "stagnation": 15},
	})
	resp, err = client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	state := sub.State
	for state != "done" && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		resp, err := client.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		state = st.State
	}
	if state != "done" {
		t.Fatalf("job stuck in state %q", state)
	}
	resp, err = client.Get(base + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Feasible      bool `json:"feasible"`
		Certification *struct {
			Certified bool `json:"certified"`
		} `json:"certification"`
	}
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d err %v", resp.StatusCode, err)
	}
	if !res.Feasible || res.Certification == nil || !res.Certification.Certified {
		t.Fatalf("result not certified feasible: %+v", res)
	}

	// Start a long-running job so the drain has something to interrupt,
	// then SIGTERM the server: it must exit 0 within the drain window.
	body, _ = json.Marshal(map[string]any{
		"spec": string(specText),
		"seed": 2,
		"ga":   map[string]int{"pop_size": 48, "max_generations": 1000000, "stagnation": 1000000},
	})
	resp, err = client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long job: status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("mmserved exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("mmserved did not exit within 60s of SIGTERM")
	}

	// The interrupted job's state on disk must be resumable (queued), with
	// a checkpoint next to it.
	manifests, _ := filepath.Glob(filepath.Join(dataDir, "jobs", "*", "manifest.json"))
	if len(manifests) != 2 {
		t.Fatalf("found %d manifests, want 2", len(manifests))
	}
	states := map[string]int{}
	for _, m := range manifests {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		var man struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &man); err != nil {
			t.Fatal(err)
		}
		states[man.State]++
	}
	if states["done"] != 1 || states["queued"] != 1 {
		t.Fatalf("persisted states %v, want one done and one queued", states)
	}
	if ckpts, _ := filepath.Glob(filepath.Join(dataDir, "jobs", "*", "job.ckpt")); len(ckpts) != 1 {
		t.Fatalf("found %d checkpoints, want 1 (the interrupted job's)", len(ckpts))
	}
}
