// End-to-end test of the mmserved process: boot the real binary on a free
// port, drive the HTTP job API through the backoff client, and verify that
// SIGTERM drains the server cleanly with exit status 0. Run with -short to
// skip.
package momosyn_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"momosyn/internal/serve"
)

// startServed boots mmserved on a kernel-assigned port and returns the
// running process plus the base URL scraped from its stdout announcement.
func startServed(t *testing.T, bin, dataDir string, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "30s"}, extraArgs...)
	if dataDir != "" {
		args = append(args, "-data", dataDir)
	}
	cmd := exec.Command(filepath.Join(bin, "mmserved"), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() {
			t.Logf("mmserved stderr:\n%s", stderr.String())
		}
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("mmserved announced nothing: %v\nstderr: %s", err, stderr.String())
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected announcement %q", line)
	}
	return cmd, strings.TrimSpace(line[i+len(marker):])
}

// servedClient builds the retrying API client the e2e tests submit
// through: transient 429/503 answers and connection hiccups back off and
// retry instead of relying on fixed sleeps.
func servedClient(t *testing.T, base string) *serve.Client {
	t.Helper()
	return &serve.Client{
		BaseURL:        base,
		BaseDelay:      20 * time.Millisecond,
		MaxDelay:       time.Second,
		RequestTimeout: 10 * time.Second,
		Logf:           t.Logf,
	}
}

func TestServedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("mmserved end-to-end test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()

	// A small specification the server can synthesise in well under a
	// second.
	spec := filepath.Join(work, "inst.spec")
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)
	specText, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(work, "data")
	cmd, base := startServed(t, bin, dataDir, "-workers", "2")
	client := servedClient(t, base)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Liveness first: the announcement races ahead of the listener only if
	// something is broken, but check rather than assume.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Submit one quick job and poll it to certified completion.
	sub, err := client.Submit(ctx, serve.JobRequest{
		Spec: string(specText),
		Seed: 1,
		GA:   serve.GAParams{PopSize: 16, MaxGenerations: 40, Stagnation: 15},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := client.WaitTerminal(ctx, sub.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	raw, err := client.Result(ctx, sub.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	var res struct {
		Feasible      bool `json:"feasible"`
		Certification *struct {
			Certified bool `json:"certified"`
		} `json:"certification"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	if !res.Feasible || res.Certification == nil || !res.Certification.Certified {
		t.Fatalf("result not certified feasible: %+v", res)
	}

	// Start a long-running job so the drain has something to interrupt,
	// then SIGTERM the server: it must exit 0 within the drain window.
	if _, err := client.Submit(ctx, serve.JobRequest{
		Spec: string(specText),
		Seed: 2,
		GA:   serve.GAParams{PopSize: 48, MaxGenerations: 1_000_000, Stagnation: 1_000_000},
	}); err != nil {
		t.Fatalf("submit long job: %v", err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("mmserved exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("mmserved did not exit within 60s of SIGTERM")
	}

	// The interrupted job's state on disk must be resumable (queued), with
	// a checkpoint next to it.
	manifests, _ := filepath.Glob(filepath.Join(dataDir, "jobs", "*", "manifest.json"))
	if len(manifests) != 2 {
		t.Fatalf("found %d manifests, want 2", len(manifests))
	}
	states := map[string]int{}
	for _, m := range manifests {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		var man struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &man); err != nil {
			t.Fatal(err)
		}
		states[man.State]++
	}
	if states["done"] != 1 || states["queued"] != 1 {
		t.Fatalf("persisted states %v, want one done and one queued", states)
	}
	if ckpts, _ := filepath.Glob(filepath.Join(dataDir, "jobs", "*", "job.ckpt")); len(ckpts) != 1 {
		t.Fatalf("found %d checkpoints, want 1 (the interrupted job's)", len(ckpts))
	}
}
