module momosyn

go 1.22
