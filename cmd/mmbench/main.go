// Command mmbench regenerates the experimental results of the DATE 2003
// multi-mode co-synthesis paper: Tables 1 and 2 (twelve generated
// benchmarks, without and with DVS), Table 3 (the smart-phone real-life
// example) and the motivational figures 2, 3 and 5.
//
//	mmbench -table 1 -reps 5
//	mmbench -table all -reps 40      # the paper's full protocol (slow)
//	mmbench -figures
//
// SIGINT/SIGTERM interrupt the experiment gracefully: in-flight synthesis
// runs stop at their next generation boundary, already-printed rows stand,
// and remaining cells report partial best-so-far numbers. An interrupted
// invocation still exits 0.
//
// With -certify every repetition's result is re-checked by the independent
// internal/verify certifier before it can enter a table; a refused
// certification aborts the experiment with exit code 4 (see docs/VERIFY.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"momosyn/internal/bench"
	"momosyn/internal/dvs"
	"momosyn/internal/energy"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/runctl"
	"momosyn/internal/sched"
	"momosyn/internal/synth"
)

// closeObs flushes instrumentation before any exit path; mmbench exits via
// os.Exit, which skips defers, so fatal and main call it explicitly.
var closeObs = func() error { return nil }

func main() {
	var (
		table    = flag.String("table", "", "which table to regenerate: 1, 2, 3 or all")
		figures  = flag.Bool("figures", false, "reproduce the motivational figures 2, 3 and 5")
		ablation = flag.Bool("ablation", false, "ablation study of the design choices on the smart phone")
		reps     = flag.Int("reps", 5, "optimisation runs averaged per cell (paper: 40)")
		seed     = flag.Int64("seed", 1, "base seed")
		pop      = flag.Int("pop", 64, "GA population size")
		gens     = flag.Int("gens", 300, "GA generation limit")
		stag     = flag.Int("stagnation", 80, "GA stagnation limit")
		parallel = flag.Int("parallel", 4, "concurrent synthesis runs across the whole table (rows fan out onto a worker pool; printed output is identical to -parallel 1)")
		certify  = flag.Bool("certify", false, "independently certify every repetition's result; a refused certification exits 4")

		progress    = flag.Bool("progress", false, "print a stderr heartbeat after each benchmark row")
		tracePath   = flag.String("trace", "", "write a JSONL run-trace event stream (bench_row events) to this file")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the run's duration")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole experiment to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	run, closer, err := obs.Setup(obs.SetupConfig{
		TracePath:      *tracePath,
		MetricsPath:    *metricsPath,
		PprofAddr:      *pprofAddr,
		CPUProfilePath: *cpuProfile,
		MemProfilePath: *memProfile,
	})
	if err != nil {
		fatal(err)
	}
	closeObs = closer

	ctx, stop := runctl.NotifyContext(context.Background())
	defer stop()

	cfg := bench.HarnessConfig{
		Reps:     *reps,
		BaseSeed: *seed,
		Parallel: *parallel,
		GA:       ga.Config{PopSize: *pop, MaxGenerations: *gens, Stagnation: *stag},
		Context:  ctx,
		Certify:  *certify,
		Obs:      run,
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *figures {
		if err := runFigures(); err != nil {
			fatal(err)
		}
	}
	if *ablation {
		if err := runAblation(cfg); err != nil {
			fatal(err)
		}
	}
	switch *table {
	case "":
		if !*figures && !*ablation {
			flag.Usage()
			os.Exit(1)
		}
	case "1":
		must(bench.Table1(cfg, os.Stdout))
	case "2":
		must(bench.Table2(cfg, os.Stdout))
	case "3":
		must(bench.Table3(cfg, os.Stdout))
	case "all":
		fmt.Println("== Table 1: mul1-mul12, considering execution probabilities (w/o DVS) ==")
		must(bench.Table1(cfg, os.Stdout))
		fmt.Println("\n== Table 2: mul1-mul12, with DVS ==")
		must(bench.Table2(cfg, os.Stdout))
		fmt.Println("\n== Table 3: smart phone ==")
		must(bench.Table3(cfg, os.Stdout))
	default:
		fatal(fmt.Errorf("unknown table %q", *table))
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "mmbench: interrupted (%v) — reported numbers are partial best-so-far results\n",
			context.Cause(ctx))
	}
	if err := closeObs(); err != nil {
		fmt.Fprintln(os.Stderr, "mmbench:", err)
		os.Exit(1)
	}
}

func must(rows []bench.Row, err error) {
	if err != nil {
		fatal(err)
	}
	_ = rows
}

// runFigures reproduces the paper's worked examples with exact arithmetic.
func runFigures() error {
	fmt.Println("== Figure 2: mode execution probabilities (motivational example 1) ==")
	sys, err := bench.Figure2System()
	if err != nil {
		return err
	}
	ev := synth.NewEvaluator(sys, false)
	evB, err := ev.Evaluate(bench.Figure2MappingB(sys))
	if err != nil {
		return err
	}
	evC, err := ev.Evaluate(bench.Figure2MappingC(sys))
	if err != nil {
		return err
	}
	fmt.Printf("mapping 2b (probability-neglecting optimum): %8.4f mWs  (paper: 26.7158)\n", evB.AvgPower*1e3)
	fmt.Printf("mapping 2c (probability-aware optimum):      %8.4f mWs  (paper: 15.7423)\n", evC.AvgPower*1e3)
	fmt.Printf("reduction: %.1f%% (paper: 41%%)\n", energy.RelativeReduction(evB.AvgPower, evC.AvgPower))

	fmt.Println("\n== Figure 3: multiple task implementations (motivational example 2) ==")
	sys3, err := bench.Figure3System()
	if err != nil {
		return err
	}
	ev3 := synth.NewEvaluator(sys3, false)
	shared, err := ev3.Evaluate(bench.Figure3MappingShared(sys3))
	if err != nil {
		return err
	}
	dup, err := ev3.Evaluate(bench.Figure3MappingDuplicated(sys3))
	if err != nil {
		return err
	}
	fmt.Printf("mapping 3b (hardware sharing, no shut-down): %8.4f mW\n", shared.AvgPower*1e3)
	fmt.Printf("mapping 3c (duplicated type, PE1 shut down): %8.4f mW\n", dup.AvgPower*1e3)
	fmt.Printf("duplicating the shared task type saves %.1f%%\n",
		energy.RelativeReduction(shared.AvgPower, dup.AvgPower))

	fmt.Println("\n== Figure 5: DVS transformation for hardware cores ==")
	slots := []sched.TaskSlot{
		{Task: 0, Core: 0, Start: 0, Finish: 4, Power: 1e-3},
		{Task: 1, Core: 0, Start: 4, Finish: 6, Power: 2e-3},
		{Task: 2, Core: 1, Start: 1, Finish: 4, Power: 4e-3},
		{Task: 3, Core: 1, Start: 4, Finish: 5, Power: 8e-3},
		{Task: 4, Core: 1, Start: 5, Finish: 6, Power: 16e-3},
	}
	fmt.Println("5 hardware tasks on 2 cores fold into sequential virtual tasks:")
	for i, seg := range dvs.Transform(slots) {
		fmt.Printf("  segment %d: [%g, %g)  combined power %.0f mW  tasks %v\n",
			i, seg.Start, seg.End, seg.Power*1e3, seg.Active)
	}
	fmt.Println()
	return nil
}

// runAblation removes one methodology ingredient at a time and reports the
// power cost of each removal, on the smart phone and on mul11 (which has a
// DVS-enabled ASIC, so the hardware-DVS ablation is informative).
func runAblation(cfg bench.HarnessConfig) error {
	phone, err := bench.SmartPhone()
	if err != nil {
		return err
	}
	mul11, err := bench.MulSystem(11)
	if err != nil {
		return err
	}
	for _, subject := range []struct {
		name string
		sys  *model.System
	}{{"smart phone", phone}, {"mul11 (DVS ASIC)", mul11}} {
		fmt.Printf("== Ablation study: %s, DVS enabled ==\n", subject.name)
		fmt.Printf("%-28s | %13s | %12s |\n", "variant", "avg power", "delta")
		if _, err := bench.AblationStudy(subject.sys, true, cfg, os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// fatal maps failures to the exit-code contract: a result the certifier
// refused exits 4, every other runtime failure exits 1.
func fatal(err error) {
	_ = closeObs() // flush whatever trace/metrics exist before dying
	fmt.Fprintln(os.Stderr, "mmbench:", err)
	if errors.Is(err, bench.ErrCertification) {
		os.Exit(4)
	}
	os.Exit(1)
}
