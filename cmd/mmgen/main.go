// Command mmgen generates random multi-mode co-synthesis problem instances
// (TGFF-style) and writes them as spec files for mmsynth, as Graphviz DOT
// documents, or as statistics summaries.
//
// Emit one instance to stdout:
//
//	mmgen -seed 42
//
// Regenerate the paper's benchmark suite mul1..mul12 into a directory:
//
//	mmgen -muls -dir specs/
//
// Render the smart phone's OMSM and task graphs:
//
//	mmgen -smartphone -dot | dot -Tsvg > phone.svg
//
// Lint an existing spec file (parse errors and semantic warnings with line
// numbers, without running any synthesis):
//
//	mmgen -lint edited.spec
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"momosyn/internal/bench"
	"momosyn/internal/gen"
	"momosyn/internal/model"
	"momosyn/internal/specio"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "generator seed")
		modes = flag.Int("modes", 0, "override number of modes (0 = envelope default)")
		pes   = flag.Int("pes", 0, "override number of PEs")
		cls   = flag.Int("cls", 0, "override number of CLs")
		mul   = flag.Int("mul", 0, "emit benchmark mulN (1..12) instead of a seeded instance")
		muls  = flag.Bool("muls", false, "emit all twelve mul benchmarks")
		phone = flag.Bool("smartphone", false, "emit the smart phone benchmark")
		dir   = flag.String("dir", "", "output directory for -muls (default: current)")
		out   = flag.String("o", "", "output file (default: stdout)")
		dot   = flag.Bool("dot", false, "emit Graphviz DOT instead of the spec format")
		stats = flag.Bool("stats", false, "print instance statistics instead of the spec")
		lint  = flag.String("lint", "", "parse the given spec file and report errors and semantic warnings")
	)
	flag.Parse()

	if *lint != "" {
		lintSpec(*lint)
		return
	}

	if *muls {
		for i := 1; i <= bench.NumMuls; i++ {
			sys, err := bench.MulSystem(i)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*dir, fmt.Sprintf("mul%d.spec", i))
			if err := emit(path, func(w io.Writer) error { return specio.Write(w, sys) }); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d modes, %d tasks)\n", path, len(sys.App.Modes), sys.App.TotalTasks())
		}
		return
	}

	var sys *model.System
	var err error
	switch {
	case *phone:
		sys, err = bench.SmartPhone()
	case *mul > 0:
		sys, err = bench.MulSystem(*mul)
	default:
		p := gen.NewParams(*seed)
		if *modes > 0 {
			p.Modes = *modes
		}
		if *pes > 0 {
			p.PEs = *pes
		}
		if *cls > 0 {
			p.CLs = *cls
		}
		sys, err = gen.Generate(p)
	}
	if err != nil {
		fatal(err)
	}
	switch {
	case *stats:
		printStats(sys)
	case *dot:
		if err := emit(*out, func(w io.Writer) error { return specio.WriteDOT(w, sys) }); err != nil {
			fatal(err)
		}
	default:
		if err := emit(*out, func(w io.Writer) error { return specio.Write(w, sys) }); err != nil {
			fatal(err)
		}
	}
}

// lintSpec parses the file and reports what a synthesis run would see:
// the first parse error (exit 1) or the semantic lint warnings.
func lintSpec(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sys, warns, err := specio.ReadWarn(f)
	if err != nil {
		fatal(err)
	}
	for _, w := range warns {
		fmt.Println(w)
	}
	fmt.Printf("%s: ok — system %s (%d modes, %d tasks, %d warning(s))\n",
		path, sys.App.Name, len(sys.App.Modes), sys.App.TotalTasks(), len(warns))
}

// emit writes through fn to the file, or stdout when path is empty.
func emit(path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printStats summarises the instance: per-mode graph shapes, type sharing
// and hardware capacity pressure.
func printStats(sys *model.System) {
	fmt.Printf("system %s: %d modes, %d tasks, %d edges, %d types\n",
		sys.App.Name, len(sys.App.Modes), sys.App.TotalTasks(), sys.App.TotalEdges(), len(sys.Lib.Types))
	fmt.Printf("%-12s %6s %6s %6s %8s %10s\n", "mode", "prob", "tasks", "edges", "period", "sw-serial")
	for _, m := range sys.App.Modes {
		serial := 0.0
		for _, task := range m.Graph.Tasks {
			best := 0.0
			for _, im := range sys.Lib.Type(task.Type).Impls {
				if pe := sys.Arch.PE(im.PE); pe.Class.IsSoftware() {
					if best == 0 || im.Time < best {
						best = im.Time
					}
				}
			}
			serial += best
		}
		fmt.Printf("%-12s %6.3f %6d %6d %8s %9.3gms\n",
			m.Name, m.Prob, len(m.Graph.Tasks), len(m.Graph.Edges),
			specio.FormatTime(m.Period), serial*1e3)
	}
	shared := 0
	for _, tt := range sys.Lib.Types {
		modes := map[model.ModeID]bool{}
		for mi, m := range sys.App.Modes {
			for _, task := range m.Graph.Tasks {
				if task.Type == tt.ID {
					modes[model.ModeID(mi)] = true
				}
			}
		}
		if len(modes) > 1 {
			shared++
		}
	}
	fmt.Printf("types used in >1 mode: %d of %d\n", shared, len(sys.Lib.Types))
	for _, pe := range sys.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		demand := 0
		for _, tt := range sys.Lib.Types {
			if im, ok := tt.ImplOn(pe.ID); ok {
				demand += im.Area
			}
		}
		fmt.Printf("PE %s (%s): area %d, total core demand %d (%.0f%%)\n",
			pe.Name, pe.Class, pe.Area, demand, float64(demand)/float64(pe.Area)*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmgen:", err)
	os.Exit(1)
}
