// Command mmserved serves multi-mode synthesis as a long-running HTTP JSON
// job service: clients POST specifications to /v1/jobs, poll live GA
// progress, fetch certified results and cancel runs, while a bounded queue
// and a configurable worker pool keep the machine loaded without being
// overrun. See docs/SERVER.md for the API.
//
//	mmserved -data /var/lib/mmserved
//	mmserved -data ./run -addr 127.0.0.1:8080 -workers 4 -specs ./specs
//	mmserved -fleet-dir /shared/fleet -node-id nodeA   # one node of a fleet
//
// With -fleet-dir any number of mmserved processes pointed at the same
// directory form a fault-tolerant fleet: jobs are claimed through
// epoch-numbered lease files, renewed by heartbeats, and recovered (from
// their last checkpoint) by surviving nodes when a holder dies, hangs or
// is partitioned. See docs/FLEET.md.
//
// Jobs checkpoint their engine state into the data directory; a restarted
// server lists finished jobs, re-queues interrupted ones and resumes them
// from their checkpoints. SIGINT/SIGTERM drain gracefully: submissions are
// refused, running syntheses stop at the next generation boundary with a
// final checkpoint, and the process exits 0.
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"momosyn/internal/obs"
	"momosyn/internal/runctl"
	"momosyn/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		dataDir   = flag.String("data", "", "data directory for job manifests, checkpoints and results (required)")
		specDir   = flag.String("specs", "", "directory of named specifications clients may reference via spec_name")
		workers   = flag.Int("workers", 2, "synthesis worker pool size")
		queue     = flag.Int("queue", 16, "bounded job queue depth (full queue answers 429)")
		ckptEvery = flag.Int("checkpoint-every", 5, "generations between per-job checkpoints")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for in-flight jobs")
		traceJobs = flag.Bool("trace-jobs", false, "write a JSONL run-trace per job into its data directory")
		lifecycle = flag.String("lifecycle-trace", "", "append job-lifecycle span events (JSONL) to this file; readable with mmtrace -lifecycle")
		accessLog = flag.String("access-log", "", "append a structured JSON access log (one line per request) to this file")
		fleetDir  = flag.String("fleet-dir", "", "shared fleet directory; set on every node to run a multi-node fleet (see docs/FLEET.md)")
		nodeID    = flag.String("node-id", "", "this node's fleet-wide unique ID (default <hostname>-<pid>)")
		leaseTTL  = flag.Duration("lease-ttl", 5*time.Second, "fleet job lease time-to-live; a node silent this long loses its jobs")
		heartbeat = flag.Duration("heartbeat", 0, "fleet lease renewal and scan interval (default lease-ttl/3)")
		cacheDir  = flag.String("cache-dir", "", "content-addressed result cache directory; repeat submissions are answered instantly (fleet default: <fleet-dir>/cache, see docs/CACHE.md)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "result cache size cap; least-recently-used entries are evicted beyond it (0 = unbounded)")

		maxAttempts   = flag.Int("max-attempts", 3, "per-job execution budget; a job failing this many times is quarantined")
		retryBackoff  = flag.Duration("retry-backoff", 2*time.Second, "base delay between a failed attempt and its retry (doubles per failure, capped at 1m)")
		jobTimeout    = flag.Duration("job-timeout", 0, "per-attempt wall-clock budget; 0 disables (requests may set a tighter deadline_ms)")
		maxGens       = flag.Int("max-generations", 0, "server-wide GA generation cap per job; 0 disables")
		watchdogStall = flag.Duration("watchdog-stall", 2*time.Minute, "fail an attempt whose GA makes no generation progress this long; 0 disables")
		watchdogGrace = flag.Duration("watchdog-grace", 10*time.Second, "after a watchdog kill, abandon the worker slot if the attempt is still wedged this long")
		failpoints    = flag.Bool("failpoints", false, "accept submissions carrying a failpoint fault injection (lifecycle drills only)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "mmserved: ", log.LstdFlags)
	if flag.NArg() > 0 {
		fatalUsage(fmt.Errorf("unexpected arguments %v", flag.Args()))
	}
	if *dataDir == "" && *fleetDir == "" {
		fatalUsage(errors.New("-data is required (or -fleet-dir for fleet mode)"))
	}
	if *workers <= 0 || *queue <= 0 || *ckptEvery <= 0 {
		fatalUsage(errors.New("-workers, -queue and -checkpoint-every must be positive"))
	}
	if *maxAttempts <= 0 {
		fatalUsage(errors.New("-max-attempts must be positive"))
	}
	if *jobTimeout < 0 || *watchdogStall < 0 || *watchdogGrace < 0 || *retryBackoff < 0 || *maxGens < 0 {
		fatalUsage(errors.New("-job-timeout, -watchdog-stall, -watchdog-grace, -retry-backoff and -max-generations must not be negative"))
	}
	if *fleetDir != "" && *nodeID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "node"
		}
		*nodeID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	var lifecycleRun *obs.Run
	if *lifecycle != "" {
		f, err := os.OpenFile(*lifecycle, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Print(err)
			os.Exit(1)
		}
		lifecycleRun = obs.NewRun(nil, obs.NewJSONLSink(f))
	}
	var accessLogW io.Writer
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Print(err)
			os.Exit(1)
		}
		defer f.Close()
		accessLogW = f
	}

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DataDir:         *dataDir,
		SpecDir:         *specDir,
		CheckpointEvery: *ckptEvery,
		TraceJobs:       *traceJobs,
		Lifecycle:       lifecycleRun,
		AccessLog:       accessLogW,
		Registry:        obs.NewRegistry(),
		Logf:            logger.Printf,
		FleetDir:        *fleetDir,
		NodeID:          *nodeID,
		LeaseTTL:        *leaseTTL,
		Heartbeat:       *heartbeat,
		MaxAttempts:     *maxAttempts,
		RetryBackoff:    *retryBackoff,
		JobTimeout:      *jobTimeout,
		MaxGenerations:  *maxGens,
		WatchdogStall:   *watchdogStall,
		WatchdogGrace:   *watchdogGrace,
		Failpoints:      *failpoints,
		CacheDir:        *cacheDir,
		CacheMaxBytes:   *cacheMax,
	})
	if err != nil {
		logger.Print(err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		os.Exit(1)
	}
	// The resolved address goes to stdout so scripts (and humans) can find
	// a :0-assigned port.
	fmt.Printf("mmserved listening on http://%s\n", ln.Addr())

	ctx, stop := runctl.NotifyContext(context.Background())
	defer stop()
	srv.Start(ctx)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				serveErr <- fmt.Errorf("http server panicked: %v", p)
			}
		}()
		serveErr <- httpSrv.Serve(ln)
	}()

	exit := 0
	select {
	case <-ctx.Done():
		logger.Printf("signal received, draining (deadline %v)", *drain)
	case err := <-serveErr:
		logger.Printf("http server failed: %v", err)
		exit = 1
	}

	deadline, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(deadline); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(deadline); err != nil {
		logger.Printf("%v (interrupted jobs stay resumable)", err)
		if exit == 0 {
			exit = 1
		}
	} else {
		logger.Print("drained cleanly")
	}
	// The lifecycle sink buffers; flush it after the drain so the trailing
	// terminal/fenced spans of drained jobs reach disk. Nil-safe when off.
	if err := lifecycleRun.Close(); err != nil {
		logger.Printf("lifecycle trace: %v", err)
		if exit == 0 {
			exit = 1
		}
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// fatalUsage reports a command-line usage error (exit 2), matching the
// flag package's own exit code for unparsable flags.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "mmserved:", err)
	flag.Usage()
	os.Exit(2)
}
