// Command mmtrace validates and summarises the observability artefacts of
// a synthesis run: the JSONL run-trace event stream written by
// `mmsynth -trace` (also mmbench -trace, mmsim -run-trace, and the
// job-lifecycle stream of `mmserved -lifecycle-trace`) and the JSON
// metrics snapshot written by `-metrics`. Every trace line is checked
// against the event schema of docs/OBSERVABILITY.md.
//
//	mmtrace run.jsonl
//	mmtrace -summary run.jsonl
//	mmtrace -lifecycle jobs.jsonl            # per-state dwell-time table
//	mmtrace -metrics metrics.json run.jsonl
//	mmtrace -metrics metrics.json            # snapshot only, no trace
//
// Exit codes: 0 all inputs valid, 1 validation failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"momosyn/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		metricsPath = fs.String("metrics", "", "also validate this JSON metrics snapshot")
		summary     = fs.Bool("summary", false, "print a per-kind event summary and the run's convergence endpoints")
		lifecycle   = fs.Bool("lifecycle", false, "print a per-state dwell-time table from job-lifecycle span events")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() > 1 {
		return usage(stderr, fs, fmt.Errorf("at most one trace file, got %v", fs.Args()))
	}
	if fs.NArg() == 0 && *metricsPath == "" {
		return usage(stderr, fs, fmt.Errorf("nothing to validate: pass a trace file and/or -metrics"))
	}
	if *lifecycle && fs.NArg() == 0 {
		return usage(stderr, fs, fmt.Errorf("-lifecycle needs a trace file"))
	}

	worst := 0
	if fs.NArg() == 1 {
		events, code := validateTrace(fs.Arg(0), stdout, stderr, fs)
		worst = max(worst, code)
		if code == 0 && *summary {
			printSummary(stdout, events)
		}
		if code == 0 && *lifecycle && !printLifecycle(stdout, stderr, events) {
			worst = max(worst, 1)
		}
	}
	if *metricsPath != "" {
		worst = max(worst, validateMetrics(*metricsPath, stdout, stderr, fs))
	}
	return worst
}

// validateTrace reads and schema-checks every event of one JSONL file,
// reporting the first offending line on failure. The returned code is the
// process exit code contribution: 0 valid, 1 invalid, 2 unreadable.
func validateTrace(path string, stdout, stderr io.Writer, fs *flag.FlagSet) ([]*obs.Event, int) {
	f, err := os.Open(path)
	if err != nil {
		return nil, usage(stderr, fs, err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		fmt.Fprintf(stderr, "mmtrace: %s: %v\n", path, err)
		return nil, 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "mmtrace: %s: no events\n", path)
		return nil, 1
	}
	fmt.Fprintf(stdout, "%s: %d events, all schema-valid\n", path, len(events))
	return events, 0
}

// printSummary renders per-kind counts and the convergence endpoints that
// the paper's experiments report (first/last generation fitness and p̄).
func printSummary(stdout io.Writer, events []*obs.Event) {
	counts := map[string]int{}
	var first, last *obs.GenerationEvent
	for _, ev := range events {
		counts[ev.Ev]++
		if ev.Ev == obs.EvGeneration {
			if first == nil {
				first = ev.Gen
			}
			last = ev.Gen
		}
	}
	for _, kind := range []string{obs.EvRunStart, obs.EvGeneration, obs.EvEval,
		obs.EvSpan, obs.EvBenchRow, obs.EvRunEnd, obs.EvJob} {
		if counts[kind] > 0 {
			fmt.Fprintf(stdout, "  %-12s %6d\n", kind, counts[kind])
		}
	}
	if first != nil {
		fmt.Fprintf(stdout, "  generations %d..%d: best fitness %g -> %g, avg power %g -> %g W\n",
			first.Gen, last.Gen,
			float64(first.BestFitness), float64(last.BestFitness),
			float64(first.AvgPower), float64(last.AvgPower))
		for _, m := range last.Mutations {
			fmt.Fprintf(stdout, "  mutation %-10s %d/%d/%d (improved/accepted/attempted)\n",
				m.Name, m.Improved, m.Accepted, m.Attempts)
		}
	}
}

// dwellStat accumulates the time jobs spent in one state before leaving it.
type dwellStat struct {
	leaves int
	total  int64
	max    int64
}

// printLifecycle renders the per-state dwell-time table of a job-lifecycle
// span stream: for each state, how often jobs left it and how long they
// sat in it (total/mean/max), plus checkpoint-save totals and the terminal
// outcome tally. Returns false when the stream has no job events at all —
// asking for a lifecycle table of a trace without one is a failure.
func printLifecycle(stdout, stderr io.Writer, events []*obs.Event) bool {
	dwell := map[string]*dwellStat{}
	terminals := map[string]int{}
	jobs := map[string]bool{}
	var spans, ckpts int
	var ckptTotal int64
	for _, ev := range events {
		if ev.Ev != obs.EvJob {
			continue
		}
		j := ev.Job
		spans++
		jobs[j.Job] = true
		if j.Event == obs.JobCheckpoint {
			// Checkpoint markers carry the save duration, not a state dwell.
			ckpts++
			ckptTotal += j.DwellNs
			continue
		}
		if j.From != "" {
			st := dwell[j.From]
			if st == nil {
				st = &dwellStat{}
				dwell[j.From] = st
			}
			st.leaves++
			st.total += j.DwellNs
			if j.DwellNs > st.max {
				st.max = j.DwellNs
			}
		}
		if j.Event == obs.JobTerminal {
			terminals[j.State]++
		}
	}
	if spans == 0 {
		fmt.Fprintf(stderr, "mmtrace: no job lifecycle events in trace\n")
		return false
	}
	fmt.Fprintf(stdout, "  lifecycle: %d jobs, %d spans\n", len(jobs), spans)

	states := make([]string, 0, len(dwell))
	for s := range dwell {
		states = append(states, s)
	}
	sort.Strings(states)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  STATE\tLEAVES\tTOTAL\tMEAN\tMAX\n")
	for _, s := range states {
		st := dwell[s]
		mean := st.total / int64(st.leaves)
		fmt.Fprintf(tw, "  %s\t%d\t%v\t%v\t%v\n", s, st.leaves,
			time.Duration(st.total), time.Duration(mean), time.Duration(st.max))
	}
	tw.Flush()
	if ckpts > 0 {
		fmt.Fprintf(stdout, "  checkpoint saves: %d, total %v\n", ckpts, time.Duration(ckptTotal))
	}
	if len(terminals) > 0 {
		outcomes := make([]string, 0, len(terminals))
		for s := range terminals {
			outcomes = append(outcomes, s)
		}
		sort.Strings(outcomes)
		fmt.Fprintf(stdout, "  terminal:")
		for _, s := range outcomes {
			fmt.Fprintf(stdout, " %s %d", s, terminals[s])
		}
		fmt.Fprintln(stdout)
	}
	return true
}

// validateMetrics checks the JSON snapshot's structural invariants
// (histogram bucket arithmetic in particular); same code contract as
// validateTrace.
func validateMetrics(path string, stdout, stderr io.Writer, fs *flag.FlagSet) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return usage(stderr, fs, err)
	}
	if err := obs.ValidateMetricsJSON(data); err != nil {
		fmt.Fprintf(stderr, "mmtrace: %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: metrics snapshot valid\n", path)
	return 0
}

// usage reports a command-line usage error (exit 2), matching the flag
// package's own exit code for unparsable flags.
func usage(stderr io.Writer, fs *flag.FlagSet, err error) int {
	fmt.Fprintln(stderr, "mmtrace:", err)
	fs.Usage()
	return 2
}
