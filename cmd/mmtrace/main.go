// Command mmtrace validates and summarises the observability artefacts of
// a synthesis run: the JSONL run-trace event stream written by
// `mmsynth -trace` (also mmbench -trace, mmsim -run-trace) and the JSON
// metrics snapshot written by `-metrics`. Every trace line is checked
// against the event schema of docs/OBSERVABILITY.md.
//
//	mmtrace run.jsonl
//	mmtrace -summary run.jsonl
//	mmtrace -metrics metrics.json run.jsonl
//	mmtrace -metrics metrics.json            # snapshot only, no trace
//
// Exit codes: 0 all inputs valid, 1 validation failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"momosyn/internal/obs"
)

func main() {
	var (
		metricsPath = flag.String("metrics", "", "also validate this JSON metrics snapshot")
		summary     = flag.Bool("summary", false, "print a per-kind event summary and the run's convergence endpoints")
	)
	flag.Parse()

	if flag.NArg() > 1 {
		fatalUsage(fmt.Errorf("at most one trace file, got %v", flag.Args()))
	}
	if flag.NArg() == 0 && *metricsPath == "" {
		fatalUsage(fmt.Errorf("nothing to validate: pass a trace file and/or -metrics"))
	}

	ok := true
	if flag.NArg() == 1 {
		ok = validateTrace(flag.Arg(0), *summary) && ok
	}
	if *metricsPath != "" {
		ok = validateMetrics(*metricsPath) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

// validateTrace reads and schema-checks every event of one JSONL file,
// reporting the first offending line on failure.
func validateTrace(path string, summary bool) bool {
	f, err := os.Open(path)
	if err != nil {
		fatalUsage(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmtrace: %s: %v\n", path, err)
		return false
	}
	if len(events) == 0 {
		fmt.Fprintf(os.Stderr, "mmtrace: %s: no events\n", path)
		return false
	}
	fmt.Printf("%s: %d events, all schema-valid\n", path, len(events))
	if summary {
		printSummary(events)
	}
	return true
}

// printSummary renders per-kind counts and the convergence endpoints that
// the paper's experiments report (first/last generation fitness and p̄).
func printSummary(events []*obs.Event) {
	counts := map[string]int{}
	var first, last *obs.GenerationEvent
	for _, ev := range events {
		counts[ev.Ev]++
		if ev.Ev == obs.EvGeneration {
			if first == nil {
				first = ev.Gen
			}
			last = ev.Gen
		}
	}
	for _, kind := range []string{obs.EvRunStart, obs.EvGeneration, obs.EvEval,
		obs.EvSpan, obs.EvBenchRow, obs.EvRunEnd} {
		if counts[kind] > 0 {
			fmt.Printf("  %-12s %6d\n", kind, counts[kind])
		}
	}
	if first != nil {
		fmt.Printf("  generations %d..%d: best fitness %g -> %g, avg power %g -> %g W\n",
			first.Gen, last.Gen,
			float64(first.BestFitness), float64(last.BestFitness),
			float64(first.AvgPower), float64(last.AvgPower))
		for _, m := range last.Mutations {
			fmt.Printf("  mutation %-10s %d/%d/%d (improved/accepted/attempted)\n",
				m.Name, m.Improved, m.Accepted, m.Attempts)
		}
	}
}

// validateMetrics checks the JSON snapshot's structural invariants
// (histogram bucket arithmetic in particular).
func validateMetrics(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalUsage(err)
	}
	if err := obs.ValidateMetricsJSON(data); err != nil {
		fmt.Fprintf(os.Stderr, "mmtrace: %s: %v\n", path, err)
		return false
	}
	fmt.Printf("%s: metrics snapshot valid\n", path)
	return true
}

func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "mmtrace:", err)
	flag.Usage()
	os.Exit(2)
}
