package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"momosyn/internal/obs"
)

// runCmd invokes the CLI entry point and captures its streams.
func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeTrace serialises events through the production sink into a file.
func writeTrace(t *testing.T, events ...*obs.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	for i, ev := range events {
		ev.T = int64(i + 1)
		if err := sink.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func jobEv(e obs.JobEvent) *obs.Event { return &obs.Event{Ev: obs.EvJob, Job: &e} }

// lifecycleTrace is a two-job stream: one happy path with a retry, one
// cancelled straight out of the queue.
func lifecycleTrace(t *testing.T) string {
	t.Helper()
	return writeTrace(t,
		jobEv(obs.JobEvent{Job: "j000001", Event: obs.JobSubmitted, State: "queued"}),
		jobEv(obs.JobEvent{Job: "j000001", Event: obs.JobAttempt, From: "queued", State: "running", Attempt: 1, DwellNs: 2e6}),
		jobEv(obs.JobEvent{Job: "j000001", Event: obs.JobCheckpoint, State: "running", Attempt: 1, DwellNs: 5e5}),
		jobEv(obs.JobEvent{Job: "j000001", Event: obs.JobRetry, From: "running", State: "queued", Attempt: 1, DwellNs: 4e6, Detail: "retrying in 2s: synthetic"}),
		jobEv(obs.JobEvent{Job: "j000001", Event: obs.JobAttempt, From: "queued", State: "running", Attempt: 2, DwellNs: 8e6}),
		jobEv(obs.JobEvent{Job: "j000001", Event: obs.JobTerminal, From: "running", State: "done", Attempt: 2, DwellNs: 6e6}),
		jobEv(obs.JobEvent{Job: "j000002", Event: obs.JobSubmitted, State: "queued"}),
		jobEv(obs.JobEvent{Job: "j000002", Event: obs.JobTerminal, From: "queued", State: "cancelled", DwellNs: 1e6, Detail: "cancelled by client"}),
	)
}

func TestExitCodes(t *testing.T) {
	valid := lifecycleTrace(t)
	noJobs := writeTrace(t, &obs.Event{Ev: obs.EvSpan, Span: &obs.SpanEvent{Name: "x", Ns: 1}})

	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	invalid := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(invalid, []byte(`{"ev":"job","t":1,"job":{"job":"","event":"submitted"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badMetrics := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badMetrics, []byte(`{"histograms":{"h":{"count":1,"sum":0,"bounds":[1],"counts":[1]}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	goodMetrics := filepath.Join(t.TempDir(), "good.json")
	{
		reg := obs.NewRegistry()
		reg.Counter("c").Inc()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goodMetrics, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no inputs", nil, 2},
		{"two trace files", []string{valid, valid}, 2},
		{"unknown flag", []string{"-nope", valid}, 2},
		{"missing trace file", []string{filepath.Join(t.TempDir(), "nope.jsonl")}, 2},
		{"lifecycle without trace", []string{"-lifecycle", "-metrics", goodMetrics}, 2},
		{"valid trace", []string{valid}, 0},
		{"valid trace with summary", []string{"-summary", valid}, 0},
		{"valid lifecycle", []string{"-lifecycle", valid}, 0},
		{"lifecycle of job-less trace", []string{"-lifecycle", noJobs}, 1},
		{"empty trace", []string{empty}, 1},
		{"schema-invalid trace", []string{invalid}, 1},
		{"valid metrics only", []string{"-metrics", goodMetrics}, 0},
		{"invalid metrics", []string{"-metrics", badMetrics}, 1},
		{"invalid metrics beside valid trace", []string{"-metrics", badMetrics, valid}, 1},
		{"missing metrics file", []string{"-metrics", filepath.Join(t.TempDir(), "nope.json")}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.want, stderr)
			}
		})
	}
}

func TestLifecycleTable(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-lifecycle", lifecycleTrace(t))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"lifecycle: 2 jobs, 8 spans",
		"STATE", "LEAVES", "TOTAL", "MEAN", "MAX",
		"checkpoint saves: 1, total 500µs",
		"terminal: cancelled 1 done 1",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("lifecycle output missing %q:\n%s", want, stdout)
		}
	}
	// queued is left three times (two attempts + one cancel): 2+8+1 = 11ms
	// total, ~3.67ms mean, 8ms max. running is left twice (retry+terminal):
	// 10ms total, 5ms mean, 6ms max. Checkpoints must not count as dwell.
	lines := strings.Split(stdout, "\n")
	var queued, running string
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) == 5 && f[0] == "queued" {
			queued = strings.Join(f, " ")
		}
		if len(f) == 5 && f[0] == "running" {
			running = strings.Join(f, " ")
		}
	}
	if queued != "queued 3 11ms 3.666666ms 8ms" {
		t.Fatalf("queued row = %q", queued)
	}
	if running != "running 2 10ms 5ms 6ms" {
		t.Fatalf("running row = %q", running)
	}
}

func TestSummaryCountsJobEvents(t *testing.T) {
	code, stdout, _ := runCmd(t, "-summary", lifecycleTrace(t))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, "job") || !strings.Contains(stdout, "8") {
		t.Fatalf("summary does not count job events:\n%s", stdout)
	}
}
