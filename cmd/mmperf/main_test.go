package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"momosyn/internal/perf"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeArtifact(t *testing.T, path string, wallMs ...float64) {
	t.Helper()
	a := &perf.Artifact{
		Schema: perf.Schema,
		Env:    perf.Env{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, NumCPU: 4, Commit: "abc123abc123", Timestamp: "2026-08-09T00:00:00Z"},
		Config: perf.RunConfig{Reps: len(wallMs), Seed: 1, PopSize: 8, MaxGens: 4, Stagnation: 3},
	}
	sr := perf.SpecResult{Name: "mul1", Modes: 2, Tasks: 10}
	for i, ms := range wallMs {
		sr.Reps = append(sr.Reps, perf.Rep{
			Seed: 1 + int64(i)*7919, WallNs: int64(ms * 1e6),
			Evaluations: 1000, EvalsPerSec: 1000 / (ms / 1e3), Generations: 10,
			CacheHitRate: 0.5, Allocs: 1000, AllocBytes: 1 << 20,
		})
	}
	a.Specs = append(a.Specs, sr)
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestExitCodes pins the documented contract: 0 ok, 1 regression or
// runtime failure, 2 usage.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	same := filepath.Join(dir, "same.json")
	slow := filepath.Join(dir, "slow.json")
	writeArtifact(t, base, 100, 101, 99)
	writeArtifact(t, same, 100, 101, 99)
	writeArtifact(t, slow, 150, 151, 149)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"wrong"}`), 0o644)

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"bogus"}, 2},
		{"help", []string{"help"}, 0},
		{"diff ok", []string{"diff", base, same}, 0},
		{"diff regression", []string{"diff", base, slow}, 1},
		{"diff improvement ok", []string{"diff", slow, base}, 0},
		{"diff one arg", []string{"diff", base}, 2},
		{"diff missing file", []string{"diff", base, filepath.Join(dir, "nope.json")}, 2},
		{"diff invalid artifact", []string{"diff", base, bad}, 2},
		{"diff bad flag", []string{"diff", "-nope", base, same}, 2},
		{"run bad spec", []string{"run", "-specs", "/no/such.spec"}, 2},
		{"run stray args", []string{"run", "stray"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCmd(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.want, stdout, stderr)
			}
		})
	}
}

func TestDiffOutputShapes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	slow := filepath.Join(dir, "slow.json")
	writeArtifact(t, base, 100, 101, 99)
	writeArtifact(t, slow, 150, 151, 149)

	code, stdout, _ := runCmd(t, "diff", base, slow)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "REGRESSED") || !strings.Contains(stdout, "regressed") {
		t.Fatalf("regression output incomplete:\n%s", stdout)
	}
	code, stdout, _ = runCmd(t, "diff", base, base)
	if code != 0 || !strings.Contains(stdout, "no regressions") {
		t.Fatalf("self-diff: exit %d, out:\n%s", code, stdout)
	}
}

// TestRunProducesDiffableArtifact executes a real (tiny) measurement and
// feeds the artifact straight back through diff: the seed-pinned runs
// must never self-certify a regression.
func TestRunProducesDiffableArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	code, stdout, stderr := runCmd(t, "run",
		"-specs", "mul1", "-reps", "2", "-warmups", "0",
		"-pop", "8", "-gens", "6", "-stagnation", "4", "-out", out)
	if code != 0 {
		t.Fatalf("run exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "wrote "+out) {
		t.Fatalf("run output missing artifact path:\n%s", stdout)
	}
	if _, err := perf.ReadFile(out); err != nil {
		t.Fatalf("written artifact invalid: %v", err)
	}
	code, stdout, stderr = runCmd(t, "diff", out, out)
	if code != 0 {
		t.Fatalf("self-diff exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}
