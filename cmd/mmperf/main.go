// Command mmperf maintains the repository's performance trajectory.
//
//	mmperf run  -specs muls -reps 5 -out BENCH.json   # measure the suite
//	mmperf diff old.json new.json                     # gate on regressions
//
// `mmperf run` executes the configured benchmark specifications under
// instrumentation and writes one canonical BENCH_<commit>.json artifact:
// per-spec wall time, evals/sec, per-phase breakdown, fitness-cache hit
// rate, allocation counts, and an environment fingerprint. `mmperf diff`
// compares two artifacts with robust statistics (median + MAD across
// repetitions) and exits 1 when a metric regressed past threshold.
//
// Exit codes: 0 success (diff: no regression), 1 runtime failure or a
// certified regression, 2 usage error (bad flags, unreadable or invalid
// artifacts). See docs/PERF.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"momosyn/internal/ga"
	"momosyn/internal/perf"
	"momosyn/internal/runctl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return runMeasure(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "mmperf: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  mmperf run  [flags]              measure the benchmark suite, write a BENCH artifact
  mmperf diff [flags] old new      compare two artifacts, exit 1 on regression
Run 'mmperf run -h' or 'mmperf diff -h' for per-subcommand flags.
`)
}

func runMeasure(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmperf run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specsArg = fs.String("specs", "muls", "comma-separated specs: muls (the full mul1-mul12 suite), mulN, smartphone, or spec file paths")
		reps     = fs.Int("reps", 3, "measured repetitions per spec")
		warmups  = fs.Int("warmups", 1, "unmeasured warm-up runs per spec")
		seed     = fs.Int64("seed", 1, "base seed (rep r runs at seed + r*7919)")
		useDVS   = fs.Bool("dvs", false, "enable voltage scaling during the measured runs")
		pop      = fs.Int("pop", 64, "GA population size")
		gens     = fs.Int("gens", 300, "GA generation limit")
		stag     = fs.Int("stagnation", 80, "GA stagnation limit")
		out      = fs.String("out", "", "artifact output path (default BENCH_<commit>.json in the working directory)")
		progress = fs.Bool("progress", false, "print a stderr heartbeat after each spec")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "mmperf run: unexpected arguments %v\n", fs.Args())
		return 2
	}
	specs, err := perf.ResolveSpecs(strings.Split(*specsArg, ","))
	if err != nil {
		fmt.Fprintln(stderr, "mmperf run:", err)
		return 2
	}
	ctx, stop := runctl.NotifyContext(context.Background())
	defer stop()
	opt := perf.RunOptions{
		Reps:    *reps,
		Warmups: *warmups,
		Seed:    *seed,
		DVS:     *useDVS,
		GA:      ga.Config{PopSize: *pop, MaxGenerations: *gens, Stagnation: *stag},
		Context: ctx,
	}
	if *progress {
		opt.Progress = stderr
	}
	art, err := perf.Run(specs, opt)
	if err != nil {
		fmt.Fprintln(stderr, "mmperf run:", err)
		return 1
	}
	path := *out
	if path == "" {
		path = perf.ArtifactName(art.Env.Commit)
	}
	if err := art.WriteFile(path); err != nil {
		fmt.Fprintln(stderr, "mmperf run:", err)
		return 1
	}
	fmt.Fprintf(stdout, "mmperf: wrote %s (%d specs, %d reps each, commit %s)\n",
		path, len(art.Specs), art.Config.Reps, art.Env.Commit)
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmperf diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := perf.DefaultThresholds()
	var (
		wall    = fs.Float64("wall", def.Wall, "relative threshold for per-spec median wall time")
		phase   = fs.Float64("phase", def.Phase, "relative threshold for per-phase median times")
		evals   = fs.Float64("evals", def.Evals, "relative threshold for median evals/sec")
		cache   = fs.Float64("cache", def.Cache, "absolute threshold for the median cache hit rate")
		allocs  = fs.Float64("allocs", def.Allocs, "relative threshold for median allocation counts")
		madk    = fs.Float64("madk", def.MADK, "noise gate: |delta| must exceed madk * max(MAD old, MAD new)")
		minPh   = fs.Int64("min-phase-ns", def.MinPhaseNs, "ignore phases whose medians are both below this many ns")
		verbose = fs.Bool("v", false, "print every compared metric, not only headline and changed rows")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "mmperf diff: want exactly two artifact paths (old new)")
		return 2
	}
	oldArt, err := perf.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "mmperf diff:", err)
		return 2
	}
	newArt, err := perf.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "mmperf diff:", err)
		return 2
	}
	th := perf.Thresholds{
		Wall: *wall, Phase: *phase, Evals: *evals, Cache: *cache,
		Allocs: *allocs, MADK: *madk, MinPhaseNs: *minPh,
	}
	deltas, warnings := perf.Diff(oldArt, newArt, th)
	perf.FormatDeltas(stdout, deltas, warnings, *verbose)
	if regs := perf.Regressions(deltas); len(regs) > 0 {
		fmt.Fprintf(stdout, "mmperf: %d metric(s) regressed (old %s -> new %s)\n",
			len(regs), oldArt.Env.Commit, newArt.Env.Commit)
		return 1
	}
	fmt.Fprintf(stdout, "mmperf: no regressions (old %s -> new %s)\n",
		oldArt.Env.Commit, newArt.Env.Commit)
	return 0
}
