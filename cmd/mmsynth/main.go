// Command mmsynth synthesises an energy-efficient implementation of a
// multi-mode system specification: task mapping, hardware core allocation,
// communication mapping, scheduling and (optionally) voltage scaling, per
// the DATE 2003 methodology of Schmitz, Al-Hashimi and Eles.
//
//	mmgen -seed 7 | mmsynth -dvs
//	mmsynth -spec smartphone.spec -dvs -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"momosyn/internal/ga"
	"momosyn/internal/gantt"
	"momosyn/internal/model"
	"momosyn/internal/specio"
	"momosyn/internal/synth"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "specification file (default: stdin)")
		useDVS    = flag.Bool("dvs", false, "enable dynamic voltage scaling")
		neglect   = flag.Bool("neglect-probabilities", false, "optimise assuming uniform mode probabilities (baseline)")
		seed      = flag.Int64("seed", 1, "optimisation seed")
		pop       = flag.Int("pop", 64, "GA population size")
		gens      = flag.Int("gens", 300, "GA generation limit")
		stag      = flag.Int("stagnation", 80, "GA stagnation limit")
		verbose   = flag.Bool("v", false, "print the per-mode schedules")
		save      = flag.String("save", "", "write the best task mapping to this file")
		useMap    = flag.String("mapping", "", "evaluate a saved mapping instead of synthesising")
		showGantt = flag.Bool("gantt", false, "print text Gantt charts of the per-mode schedules")
		svgPrefix = flag.String("svg", "", "write one SVG Gantt chart per mode to PREFIX-<mode>.svg")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sys, err := specio.Read(in)
	if err != nil {
		fatal(err)
	}

	var res *synth.Result
	if *useMap != "" {
		f, err := os.Open(*useMap)
		if err != nil {
			fatal(err)
		}
		mapping, err := specio.ReadMapping(f, sys)
		f.Close()
		if err != nil {
			fatal(err)
		}
		ev, err := synth.NewEvaluator(sys, *useDVS).Evaluate(mapping)
		if err != nil {
			fatal(err)
		}
		res = &synth.Result{Best: ev, ObjectivePower: ev.AvgPower, GA: &ga.Result{}}
	} else {
		var err error
		res, err = synth.Synthesize(sys, synth.Options{
			UseDVS:               *useDVS,
			NeglectProbabilities: *neglect,
			GA:                   ga.Config{PopSize: *pop, MaxGenerations: *gens, Stagnation: *stag},
			Seed:                 *seed,
		})
		if err != nil {
			fatal(err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := specio.WriteMapping(f, sys, res.Best.Mapping); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote mapping to %s\n", *save)
	}
	report(os.Stdout, sys, res, *verbose)
	if *showGantt {
		fmt.Println()
		for m := range sys.App.Modes {
			if err := gantt.WriteText(os.Stdout, sys, model.ModeID(m), res.Best.Schedules[m], 100); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
	if *svgPrefix != "" {
		for m, mode := range sys.App.Modes {
			path := fmt.Sprintf("%s-%s.svg", *svgPrefix, mode.Name)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := gantt.WriteSVG(f, sys, model.ModeID(m), res.Best.Schedules[m]); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if !res.Best.Feasible() {
		os.Exit(2)
	}
}

func report(w io.Writer, sys *model.System, res *synth.Result, verbose bool) {
	best := res.Best
	fmt.Fprintf(w, "system      : %s (%d modes, %d tasks)\n",
		sys.App.Name, len(sys.App.Modes), sys.App.TotalTasks())
	fmt.Fprintf(w, "average power: %s (Eq. 1, true probabilities)\n", fmtPower(best.AvgPower))
	fmt.Fprintf(w, "feasible    : %v\n", best.Feasible())
	fmt.Fprintf(w, "optimisation: %d generations, %d evaluations, %v\n",
		res.GA.Generations, res.GA.Evaluations, res.Elapsed.Round(1e6))

	fmt.Fprintf(w, "\n%-16s %10s %12s %12s %10s\n", "mode", "prob", "dynamic", "static", "weighted")
	for m, mode := range sys.App.Modes {
		mp := best.ModePowers[m]
		fmt.Fprintf(w, "%-16s %10.4f %12s %12s %10s\n",
			mode.Name, mode.Prob,
			fmtPower(mp.Dynamic()), fmtPower(mp.StaticPower),
			fmtPower(mp.Total()*mode.Prob))
	}

	fmt.Fprintf(w, "\nhardware cores:\n")
	for _, pe := range sys.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		names := coreNames(sys, best, pe.ID)
		fmt.Fprintf(w, "  %-8s area %4d/%4d cells: %s\n",
			pe.Name, maxUsed(best, pe.ID), pe.Area, names)
	}

	fmt.Fprintf(w, "\ntask mapping:\n")
	for m, mode := range sys.App.Modes {
		fmt.Fprintf(w, "  %s:", mode.Name)
		for ti, task := range mode.Graph.Tasks {
			fmt.Fprintf(w, " %s->%s", task.Name, sys.Arch.PE(best.Mapping[m][ti]).Name)
		}
		fmt.Fprintln(w)
	}

	if !verbose {
		return
	}
	fmt.Fprintf(w, "\nschedules:\n")
	for m, mode := range sys.App.Modes {
		sc := best.Schedules[m]
		fmt.Fprintf(w, "  mode %s (period %s, makespan %s):\n",
			mode.Name, specio.FormatTime(mode.Period), specio.FormatTime(sc.Makespan))
		order := make([]int, len(sc.Tasks))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return sc.Tasks[order[a]].Start < sc.Tasks[order[b]].Start })
		for _, ti := range order {
			slot := sc.Tasks[ti]
			pe := sys.Arch.PE(slot.PE)
			volt := ""
			if slot.VoltIdx >= 0 && pe.DVS {
				volt = fmt.Sprintf(" @%gV", pe.Levels[slot.VoltIdx])
			}
			fmt.Fprintf(w, "    %-14s [%10s %10s] on %s%s  E=%s\n",
				mode.Graph.Task(model.TaskID(ti)).Name,
				specio.FormatTime(slot.Start), specio.FormatTime(slot.Finish),
				pe.Name, volt, fmtEnergy(slot.Energy))
		}
	}
}

// fmtPower renders watts compactly for reports (fixed digits, unlike the
// spec writer's loss-free form).
func fmtPower(w float64) string {
	switch {
	case w >= 1:
		return fmt.Sprintf("%.4gW", w)
	case w >= 1e-3:
		return fmt.Sprintf("%.4gmW", w*1e3)
	default:
		return fmt.Sprintf("%.4guW", w*1e6)
	}
}

func fmtEnergy(j float64) string {
	switch {
	case j >= 1e-3:
		return fmt.Sprintf("%.3gmJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3guJ", j*1e6)
	default:
		return fmt.Sprintf("%.3gnJ", j*1e9)
	}
}

// coreNames lists the task types with at least one core instance on the PE
// in any mode, with instance counts.
func coreNames(sys *model.System, ev *synth.Evaluation, pe model.PEID) string {
	out := ""
	for _, tt := range sys.Lib.Types {
		max := 0
		for m := range sys.App.Modes {
			if n := ev.Alloc.Instances(model.ModeID(m), pe, tt.ID); n > max {
				max = n
			}
		}
		if max == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += tt.Name
		if max > 1 {
			out += fmt.Sprintf("x%d", max)
		}
	}
	if out == "" {
		return "(none)"
	}
	return out
}

func maxUsed(ev *synth.Evaluation, pe model.PEID) int {
	max := 0
	for m := range ev.Alloc.UsedArea {
		if a := ev.Alloc.UsedArea[m][pe]; a > max {
			max = a
		}
	}
	return max
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmsynth:", err)
	os.Exit(1)
}
