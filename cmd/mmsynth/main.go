// Command mmsynth synthesises an energy-efficient implementation of a
// multi-mode system specification: task mapping, hardware core allocation,
// communication mapping, scheduling and (optionally) voltage scaling, per
// the DATE 2003 methodology of Schmitz, Al-Hashimi and Eles.
//
//	mmgen -seed 7 | mmsynth -dvs
//	mmsynth -spec smartphone.spec -dvs -v
//	mmsynth -spec big.spec -checkpoint run.ckpt -timeout 10m
//	mmsynth -spec big.spec -checkpoint run.ckpt -resume
//
// Long runs are interruptible: SIGINT/SIGTERM stop the optimisation at the
// next generation boundary, print the best-so-far implementation, write a
// final checkpoint (when -checkpoint is set) and exit 0. See docs/RUNCTL.md.
//
// With -certify the final implementation is re-checked by the independent
// internal/verify certifier (see docs/VERIFY.md); a result the certifier
// refuses makes the run exit 4.
//
// Exit codes: 0 success (including interrupted best-so-far runs), 1 runtime
// failure, 2 usage error, 3 completed run whose best implementation is
// infeasible, 4 certification failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"momosyn/internal/ga"
	"momosyn/internal/gantt"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/runctl"
	"momosyn/internal/specio"
	"momosyn/internal/synth"
	"momosyn/internal/verify"
	"momosyn/internal/verify/faultinj"
)

// closeObs flushes instrumentation (trace, metrics snapshot, profiles)
// before any exit path. mmsynth exits via os.Exit, which skips defers, so
// every exit calls this explicitly; main replaces it when -trace/-metrics/
// -pprof are in use.
var closeObs = func() error { return nil }

func main() {
	var (
		specPath  = flag.String("spec", "", "specification file (default: stdin)")
		useDVS    = flag.Bool("dvs", false, "enable dynamic voltage scaling")
		neglect   = flag.Bool("neglect-probabilities", false, "optimise assuming uniform mode probabilities (baseline)")
		seed      = flag.Int64("seed", 1, "optimisation seed")
		pop       = flag.Int("pop", 64, "GA population size")
		gens      = flag.Int("gens", 300, "GA generation limit")
		stag      = flag.Int("stagnation", 80, "GA stagnation limit")
		verbose   = flag.Bool("v", false, "print the per-mode schedules")
		save      = flag.String("save", "", "write the best task mapping to this file")
		useMap    = flag.String("mapping", "", "evaluate a saved mapping instead of synthesising")
		showGantt = flag.Bool("gantt", false, "print text Gantt charts of the per-mode schedules")
		svgPrefix = flag.String("svg", "", "write one SVG Gantt chart per mode to PREFIX-<mode>.svg")

		checkpoint  = flag.String("checkpoint", "", "persist engine state to this file for crash recovery")
		ckptEvery   = flag.Int("checkpoint-every", 10, "generations between checkpoints")
		resume      = flag.Bool("resume", false, "resume the run stored in -checkpoint (same spec, seed and flags required)")
		timeout     = flag.Duration("timeout", 0, "optimisation deadline (e.g. 10m); on expiry the best-so-far result is reported")
		stall       = flag.Int("stall", 0, "stall watchdog: re-randomise the worst half after this many generations without improvement (0 = off)")
		faultBudget = flag.Int("fault-budget", 64, "distinct panicking genomes tolerated before the run aborts")
		certify     = flag.Bool("certify", false, "independently certify the final implementation; refused certification exits 4")

		tracePath   = flag.String("trace", "", "write a JSONL run-trace event stream to this file (see docs/OBSERVABILITY.md)")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the run's duration")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		fatalUsage(fmt.Errorf("unexpected arguments %v", flag.Args()))
	}
	if *resume && *checkpoint == "" {
		fatalUsage(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *useMap != "" && (*resume || *checkpoint != "") {
		fatalUsage(fmt.Errorf("-mapping cannot be combined with -checkpoint/-resume"))
	}
	if *ckptEvery <= 0 {
		fatalUsage(fmt.Errorf("-checkpoint-every must be positive"))
	}
	run, closer, err := obs.Setup(obs.SetupConfig{
		TracePath:      *tracePath,
		MetricsPath:    *metricsPath,
		PprofAddr:      *pprofAddr,
		CPUProfilePath: *cpuProfile,
		MemProfilePath: *memProfile,
	})
	if err != nil {
		fatal(err)
	}
	closeObs = closer

	var in io.Reader = os.Stdin
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sys, warns, err := specio.ReadWarn(in)
	if err != nil {
		fatal(err)
	}
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, "mmsynth:", w)
	}

	var res *synth.Result
	if *useMap != "" {
		f, err := os.Open(*useMap)
		if err != nil {
			fatal(err)
		}
		mapping, err := specio.ReadMapping(f, sys)
		f.Close()
		if err != nil {
			fatal(err)
		}
		e := synth.NewEvaluator(sys, *useDVS)
		e.Obs = run
		ev, err := e.Evaluate(mapping)
		if err != nil {
			fatal(err)
		}
		res = &synth.Result{Best: ev, ObjectivePower: ev.AvgPower, GA: &ga.Result{}}
	} else {
		ctx, stop := runctl.NotifyContext(context.Background())
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		var err error
		res, err = synth.Synthesize(sys, synth.Options{
			UseDVS:               *useDVS,
			NeglectProbabilities: *neglect,
			GA:                   ga.Config{PopSize: *pop, MaxGenerations: *gens, Stagnation: *stag},
			Seed:                 *seed,
			Context:              ctx,
			CheckpointPath:       *checkpoint,
			CheckpointEvery:      *ckptEvery,
			Resume:               *resume,
			FaultBudget:          *faultBudget,
			StallWindow:          *stall,
			Obs:                  run,
		})
		if err != nil {
			fatal(err)
		}
	}
	if *save != "" && res.Best != nil {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := specio.WriteMapping(f, sys, res.Best.Mapping); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote mapping to %s\n", *save)
	}
	report(os.Stdout, sys, res, *verbose)
	if res.Best != nil && *showGantt {
		fmt.Println()
		for m := range sys.App.Modes {
			if err := gantt.WriteText(os.Stdout, sys, model.ModeID(m), res.Best.Schedules[m], 100); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
	if res.Best != nil && *svgPrefix != "" {
		for m, mode := range sys.App.Modes {
			path := fmt.Sprintf("%s-%s.svg", *svgPrefix, mode.Name)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := gantt.WriteSVG(f, sys, model.ModeID(m), res.Best.Schedules[m]); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	// Interrupted runs exit 0: the user asked the run to stop and got the
	// best-so-far answer. Only a COMPLETED run whose best implementation
	// violates constraints signals infeasibility.
	exit := 0
	if !res.Partial && (res.Best == nil || !res.Best.Feasible()) {
		exit = 3
	}
	if *certify {
		// MMSYNTH_FAULT_INJECT corrupts the result before certification —
		// the test hook proving a refused certification reaches exit 4.
		if class := os.Getenv("MMSYNTH_FAULT_INJECT"); class != "" && res.Best != nil {
			if _, err := faultinj.Apply(class, sys, res.Best); err != nil {
				fatal(err)
			}
		}
		rep := synth.CertifyEvaluation(sys, res.Best, nil, verify.Options{})
		fmt.Printf("\ncertification: %s\n", rep)
		if !rep.Certified() {
			exit = 4
		}
	}
	if err := closeObs(); err != nil {
		fmt.Fprintln(os.Stderr, "mmsynth:", err)
		if exit == 0 {
			exit = 1
		}
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// report renders the run outcome. It must never assume a complete result:
// interrupted or heavily faulted runs can carry a nil Best or a nil GA
// block, and the closing report is exactly when those runs most need
// readable output.
func report(w io.Writer, sys *model.System, res *synth.Result, verbose bool) {
	fmt.Fprintf(w, "system      : %s (%d modes, %d tasks)\n",
		sys.App.Name, len(sys.App.Modes), sys.App.TotalTasks())
	if res == nil {
		fmt.Fprintf(w, "status      : no result\n")
		return
	}
	if res.Partial {
		reason := ""
		if res.GA != nil {
			reason = res.GA.Reason
		}
		fmt.Fprintf(w, "status      : partial (%s) — best-so-far result below\n", reason)
	}
	if res.GA != nil {
		fmt.Fprintf(w, "optimisation: %d generations, %d evaluations, %v\n",
			res.GA.Generations, res.GA.Evaluations, res.Elapsed.Round(1e6))
		if res.GA.Restarts > 0 {
			fmt.Fprintf(w, "watchdog    : %d diversity-injection restart(s)\n", res.GA.Restarts)
		}
	}
	if res.Cache.Hits+res.Cache.Misses > 0 {
		fmt.Fprintf(w, "fitness cache: %d hits, %d misses (%.1f%% hit rate), %d evictions, %d/%d entries\n",
			res.Cache.Hits, res.Cache.Misses, 100*res.Cache.HitRate(),
			res.Cache.Evictions, res.Cache.Entries, res.Cache.Capacity)
	}
	// Instrumentation-only detail: printed only when -trace/-metrics/-pprof
	// attached a run, so the uninstrumented report stays byte-identical.
	if res.Timings.Evaluations > 0 {
		if res.GA != nil && len(res.GA.Mutators) > 0 {
			fmt.Fprintf(w, "mutations   :")
			for i, m := range res.GA.Mutators {
				fmt.Fprintf(w, " %s %d/%d/%d", synth.MutationName(i), m.Improved, m.Accepted, m.Attempts)
			}
			fmt.Fprintf(w, " (improved/accepted/attempted)\n")
		}
		t := res.Timings
		fmt.Fprintf(w, "phase times : mobility %v, core-alloc %v, list-sched %v (comm-map %v), dvs %v, refine %v, certify %v over %d evaluations\n",
			t.Mobility.Round(1e6), t.CoreAlloc.Round(1e6), t.ListSched.Round(1e6),
			t.CommMap.Round(1e6), t.DVS.Round(1e6), t.Refine.Round(1e6),
			t.Certify.Round(1e6), t.Evaluations)
	}
	if len(res.Faults) > 0 {
		fmt.Fprintf(w, "eval faults : %d genome(s) panicked during evaluation and were marked infeasible\n", len(res.Faults))
		for i, f := range res.Faults {
			fmt.Fprintf(w, "  fault %d: attempts=%d panic: %s\n", i+1, f.Attempts, f.Err)
		}
	}
	best := res.Best
	if best == nil {
		fmt.Fprintf(w, "no evaluated implementation available (run stopped before the first evaluation)\n")
		return
	}
	fmt.Fprintf(w, "average power: %s (Eq. 1, true probabilities)\n", fmtPower(best.AvgPower))
	fmt.Fprintf(w, "feasible    : %v\n", best.Feasible())

	fmt.Fprintf(w, "\n%-16s %10s %12s %12s %10s\n", "mode", "prob", "dynamic", "static", "weighted")
	for m, mode := range sys.App.Modes {
		mp := best.ModePowers[m]
		fmt.Fprintf(w, "%-16s %10.4f %12s %12s %10s\n",
			mode.Name, mode.Prob,
			fmtPower(mp.Dynamic()), fmtPower(mp.StaticPower),
			fmtPower(mp.Total()*mode.Prob))
	}

	fmt.Fprintf(w, "\nhardware cores:\n")
	for _, pe := range sys.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		names := coreNames(sys, best, pe.ID)
		fmt.Fprintf(w, "  %-8s area %4d/%4d cells: %s\n",
			pe.Name, maxUsed(best, pe.ID), pe.Area, names)
	}

	fmt.Fprintf(w, "\ntask mapping:\n")
	for m, mode := range sys.App.Modes {
		fmt.Fprintf(w, "  %s:", mode.Name)
		for ti, task := range mode.Graph.Tasks {
			fmt.Fprintf(w, " %s->%s", task.Name, sys.Arch.PE(best.Mapping[m][ti]).Name)
		}
		fmt.Fprintln(w)
	}

	if !verbose {
		return
	}
	fmt.Fprintf(w, "\nschedules:\n")
	for m, mode := range sys.App.Modes {
		sc := best.Schedules[m]
		fmt.Fprintf(w, "  mode %s (period %s, makespan %s):\n",
			mode.Name, specio.FormatTime(mode.Period), specio.FormatTime(sc.Makespan))
		order := make([]int, len(sc.Tasks))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return sc.Tasks[order[a]].Start < sc.Tasks[order[b]].Start })
		for _, ti := range order {
			slot := sc.Tasks[ti]
			pe := sys.Arch.PE(slot.PE)
			volt := ""
			if slot.VoltIdx >= 0 && pe.DVS {
				volt = fmt.Sprintf(" @%gV", pe.Levels[slot.VoltIdx])
			}
			fmt.Fprintf(w, "    %-14s [%10s %10s] on %s%s  E=%s\n",
				mode.Graph.Task(model.TaskID(ti)).Name,
				specio.FormatTime(slot.Start), specio.FormatTime(slot.Finish),
				pe.Name, volt, fmtEnergy(slot.Energy))
		}
	}
}

// fmtPower renders watts compactly for reports (fixed digits, unlike the
// spec writer's loss-free form).
func fmtPower(w float64) string {
	switch {
	case w >= 1:
		return fmt.Sprintf("%.4gW", w)
	case w >= 1e-3:
		return fmt.Sprintf("%.4gmW", w*1e3)
	default:
		return fmt.Sprintf("%.4guW", w*1e6)
	}
}

func fmtEnergy(j float64) string {
	switch {
	case j >= 1e-3:
		return fmt.Sprintf("%.3gmJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3guJ", j*1e6)
	default:
		return fmt.Sprintf("%.3gnJ", j*1e9)
	}
}

// coreNames lists the task types with at least one core instance on the PE
// in any mode, with instance counts.
func coreNames(sys *model.System, ev *synth.Evaluation, pe model.PEID) string {
	out := ""
	for _, tt := range sys.Lib.Types {
		max := 0
		for m := range sys.App.Modes {
			if n := ev.Alloc.Instances(model.ModeID(m), pe, tt.ID); n > max {
				max = n
			}
		}
		if max == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += tt.Name
		if max > 1 {
			out += fmt.Sprintf("x%d", max)
		}
	}
	if out == "" {
		return "(none)"
	}
	return out
}

func maxUsed(ev *synth.Evaluation, pe model.PEID) int {
	max := 0
	for m := range ev.Alloc.UsedArea {
		if a := ev.Alloc.UsedArea[m][pe]; a > max {
			max = a
		}
	}
	return max
}

// fatal reports a runtime failure (exit 1): I/O errors, malformed specs,
// synthesis errors.
func fatal(err error) {
	_ = closeObs() // flush whatever trace/metrics exist before dying
	fmt.Fprintln(os.Stderr, "mmsynth:", err)
	os.Exit(1)
}

// fatalUsage reports a command-line usage error (exit 2), matching the
// flag package's own exit code for unparsable flags.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "mmsynth:", err)
	flag.Usage()
	os.Exit(2)
}
