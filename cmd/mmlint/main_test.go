package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const (
	hotallocFixture  = "../../internal/lint/testdata/src/hotalloc"
	fsyncdiscFixture = "../../internal/lint/testdata/src/fsyncdisc"
)

// TestExitCodes pins the mmlint exit-code contract: 0 clean, 1 findings,
// 2 usage or load errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list mode", []string{"-list"}, 0},
		// detrand's package gate excludes testdata, so the run is clean.
		{"clean run", []string{"-only", "detrand", hotallocFixture}, 0},
		{"findings", []string{"-only", "hotalloc", hotallocFixture}, 1},
		// Two passes over two packages, each contributing findings.
		{"multi-pass mixed", []string{"-only", "hotalloc,fsyncdisc", hotallocFixture, fsyncdiscFixture}, 1},
		{"unknown analyzer", []string{"-only", "nosuch"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad pattern", []string{"./no/such/dir"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(c.args, &stdout, &stderr); got != c.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					c.args, got, c.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestMultiPassFindingsInterleave proves one invocation can carry findings
// from several passes: the mixed run must report both hotalloc and
// fsyncdisc diagnostics.
func TestMultiPassFindingsInterleave(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-only", "hotalloc,fsyncdisc", hotallocFixture, fsyncdiscFixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", got, stderr.String())
	}
	out := stdout.String()
	for _, pass := range []string{"[hotalloc]", "[fsyncdisc]"} {
		if !strings.Contains(out, pass) {
			t.Errorf("mixed run output missing %s findings:\n%s", pass, out)
		}
	}
}

// TestJSONOutput pins the -json findings schema: file, line, column, pass,
// message per finding; an empty array on a clean run.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", "-only", "hotalloc,fsyncdisc", hotallocFixture, fsyncdiscFixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", got, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json reported no findings for fixtures full of them")
	}
	passes := map[string]bool{}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Pass == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		passes[f.Pass] = true
	}
	if !passes["hotalloc"] || !passes["fsyncdisc"] {
		t.Errorf("JSON findings cover passes %v, want both hotalloc and fsyncdisc", passes)
	}

	// A clean run still emits valid JSON: the empty array.
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-json", "-only", "detrand", hotallocFixture}, &stdout, &stderr); got != 0 {
		t.Fatalf("clean -json exit = %d, want 0; stderr:\n%s", got, stderr.String())
	}
	var empty []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("clean -json output = %q, want []", stdout.String())
	}
}
