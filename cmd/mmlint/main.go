// Command mmlint runs the repository's domain invariant checkers
// (internal/lint) over Go packages.
//
// Usage:
//
//	mmlint [-only name,name] [-list] [packages...]
//
// With no package patterns it analyzes ./... . Exit codes follow the lint
// convention: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"momosyn/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("mmlint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mmlint [-only name,name] [-list] [packages...]\n")
		fs.PrintDefaults()
	}
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmlint: %v\n", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := lint.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
