// Command mmlint runs the repository's domain invariant checkers
// (internal/lint) over Go packages.
//
// Usage:
//
//	mmlint [-only name,name] [-list] [-json] [packages...]
//
// With no package patterns it analyzes ./... . Exit codes follow the lint
// convention: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"momosyn/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable rendering of one diagnostic, emitted
// as one element of a JSON array under -json.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mmlint [-only name,name] [-list] [-json] [packages...]\n")
		fs.PrintDefaults()
	}
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintf(stderr, "mmlint: %v\n", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := lint.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "mmlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "mmlint: %v\n", err)
		return 2
	}
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Pass:    d.Analyzer,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "mmlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
