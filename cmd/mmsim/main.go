// Command mmsim synthesises an implementation of a multi-mode system and
// validates it by discrete-event simulation: a random usage trace is
// generated from the OMSM's transition structure (long-run mode
// residencies converge to the specified execution probabilities), played
// against the implementation's per-mode schedules, and the measured
// average power is compared with the analytical Eq. (1) prediction.
//
//	mmgen -smartphone | mmsim -dvs -horizon 3600
//
// With -certify the implementation is re-checked by the independent
// internal/verify certifier before simulation; a refused certification
// exits 4 (see docs/VERIFY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"momosyn/internal/ga"
	"momosyn/internal/obs"
	"momosyn/internal/sim"
	"momosyn/internal/specio"
	"momosyn/internal/synth"
	"momosyn/internal/verify"
)

// closeObs flushes instrumentation before any exit path; mmsim exits via
// os.Exit, which skips defers, so fatal and main call it explicitly.
var closeObs = func() error { return nil }

func main() {
	var (
		specPath  = flag.String("spec", "", "specification file (default: stdin)")
		useDVS    = flag.Bool("dvs", false, "enable dynamic voltage scaling")
		neglect   = flag.Bool("neglect-probabilities", false, "baseline synthesis (uniform probabilities)")
		seed      = flag.Int64("seed", 1, "seed for synthesis and trace")
		horizon   = flag.Float64("horizon", 3600, "simulated operational time in seconds")
		dwell     = flag.Float64("dwell", 5, "mean mode dwell time in seconds")
		pop       = flag.Int("pop", 64, "GA population size")
		gens      = flag.Int("gens", 300, "GA generation limit")
		useMap    = flag.String("mapping", "", "simulate a saved mapping instead of synthesising")
		useTrace  = flag.String("trace", "", "replay a recorded trace file instead of generating one")
		saveTrace = flag.String("save-trace", "", "record the generated trace to this file")
		certify   = flag.Bool("certify", false, "independently certify the implementation before simulating; refused certification exits 4")

		// -trace already means usage-trace replay here, so the run-trace
		// event stream gets its own flag name.
		runTrace    = flag.String("run-trace", "", "write a JSONL run-trace event stream of the synthesis to this file")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the run's duration")
	)
	flag.Parse()

	run, closer, err := obs.Setup(obs.SetupConfig{
		TracePath:   *runTrace,
		MetricsPath: *metricsPath,
		PprofAddr:   *pprofAddr,
	})
	if err != nil {
		fatal(err)
	}
	closeObs = closer

	var in io.Reader = os.Stdin
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	sys, warns, err := specio.ReadWarn(in)
	if err != nil {
		fatal(err)
	}
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, "mmsim:", w)
	}

	var impl *synth.Evaluation
	if *useMap != "" {
		f, err := os.Open(*useMap)
		if err != nil {
			fatal(err)
		}
		mapping, err := specio.ReadMapping(f, sys)
		f.Close()
		if err != nil {
			fatal(err)
		}
		e := synth.NewEvaluator(sys, *useDVS)
		e.Obs = run
		impl, err = e.Evaluate(mapping)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err := synth.Synthesize(sys, synth.Options{
			UseDVS:               *useDVS,
			NeglectProbabilities: *neglect,
			GA:                   ga.Config{PopSize: *pop, MaxGenerations: *gens},
			Seed:                 *seed,
			Obs:                  run,
		})
		if err != nil {
			fatal(err)
		}
		impl = res.Best
	}
	if *certify {
		rep := synth.CertifyEvaluation(sys, impl, nil, verify.Options{})
		fmt.Printf("certification   : %s\n", rep)
		if !rep.Certified() {
			_ = closeObs()
			os.Exit(4)
		}
	}

	var trace sim.Trace
	if *useTrace != "" {
		f, err := os.Open(*useTrace)
		if err != nil {
			fatal(err)
		}
		trace, err = sim.ReadTrace(f, sys.App)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		trace, err = sim.GenerateTrace(sys.App, sim.TraceConfig{
			Horizon: *horizon, MeanDwell: *dwell, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
	}
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if err := sim.WriteTrace(f, sys.App, trace); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	out, err := sim.Run(sys, impl, trace)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("system          : %s (%d modes)\n", sys.App.Name, len(sys.App.Modes))
	fmt.Printf("trace           : %d mode visits over %.1f s (%d switches)\n",
		len(trace), out.Duration, out.TransitionCount)
	fmt.Printf("reconfiguration : %.3f s total", out.TransitionTime)
	if out.DeadlineViolations > 0 {
		fmt.Printf("  (%d transition-time violations!)", out.DeadlineViolations)
	}
	fmt.Println()
	fmt.Printf("\n%-12s %8s %10s %14s\n", "mode", "Ψ spec", "realised", "hyper-periods")
	for i, m := range sys.App.Modes {
		fmt.Printf("%-12s %8.3f %10.3f %14d\n", m.Name, m.Prob, out.Residency[i], out.HyperPeriods[i])
	}

	simulated := out.AveragePower()
	predTrace := sim.PredictedPower(sys, impl, out.Residency)
	fmt.Printf("\nsimulated average power        : %10.6f mW\n", simulated*1e3)
	fmt.Printf("Eq.(1) @ realised residencies  : %10.6f mW (%+.2f%%)\n",
		predTrace*1e3, (simulated-predTrace)/predTrace*100)
	fmt.Printf("Eq.(1) @ specified probabilities: %9.6f mW (synthesis objective)\n",
		impl.AvgPower*1e3)
	fmt.Printf("energy split: dynamic %.3f J, static %.3f J\n", out.DynamicEnergy, out.StaticEnergy)
	if err := closeObs(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	_ = closeObs() // flush whatever trace/metrics exist before dying
	fmt.Fprintln(os.Stderr, "mmsim:", err)
	os.Exit(1)
}
