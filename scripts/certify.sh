#!/bin/sh
# certify.sh — run every benchmark spec through `mmsynth -certify` at a
# small GA budget, so the independent certifier oracle-checks a real
# synthesis on the whole suite in CI time. Exit 0 (feasible) and exit 3
# (honestly infeasible at this tiny budget) both count as certified; any
# other code fails. A negative control then injects a fault and demands
# exit 4, proving the certification path can actually fail.
set -eu

cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/mmsynth" ./cmd/mmsynth

for spec in specs/*.spec; do
    rc=0
    "$BIN/mmsynth" -spec "$spec" -dvs -certify \
        -pop 12 -gens 15 -stagnation 8 >/dev/null || rc=$?
    case $rc in
        0|3) echo "certified: $spec (exit $rc)" ;;
        4)   echo "FAIL: $spec refused certification" >&2; exit 1 ;;
        *)   echo "FAIL: $spec exited $rc" >&2; exit 1 ;;
    esac
done

rc=0
MMSYNTH_FAULT_INJECT=energy "$BIN/mmsynth" -spec specs/mul1.spec -dvs -certify \
    -pop 12 -gens 15 -stagnation 8 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 4 ]; then
    echo "FAIL: injected energy fault exited $rc, want 4" >&2
    exit 1
fi
echo "negative control: injected fault refused with exit 4"
