#!/bin/sh
# ci.sh — the full verification pipeline, runnable locally and in CI.
# Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

# Domain invariant checkers: determinism of the stochastic kernels,
# cancellation flow, float-comparison discipline, goroutine panic barriers,
# enum-switch exhaustiveness, hot-path allocations, lock discipline and
# rename durability. See docs/LINT.md.
echo "==> mmlint"
go run ./cmd/mmlint ./...

# Self-lint: the analyzer framework is held to its own rules.
echo "==> mmlint self-lint"
go run ./cmd/mmlint ./internal/lint/...

# Allocation pins: every //mm:noalloc function must prove
# testing.AllocsPerRun == 0 with 1:1 annotation/pin coverage
# (internal/allocpin, docs/LINT.md).
echo "==> bench-pins (//mm:noalloc AllocsPerRun pins)"
make bench-pins

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

# Fuzz smoke: short native-fuzzing bursts over the untrusted-input readers
# (spec files and checkpoints). The minimise time must be capped — the
# default 60s minimiser can dwarf the fuzz time itself on the ~30KB seed
# corpus entries.
echo "==> fuzz smoke (specio.FuzzRead)"
go test -run='^$' -fuzz=FuzzRead -fuzztime=5s -fuzzminimizetime=5s ./internal/specio

echo "==> fuzz smoke (specio.FuzzCanonical)"
go test -run='^$' -fuzz=FuzzCanonical -fuzztime=5s -fuzzminimizetime=5s ./internal/specio

echo "==> fuzz smoke (runctl.FuzzCheckpoint)"
go test -run='^$' -fuzz=FuzzCheckpoint -fuzztime=5s -fuzzminimizetime=5s ./internal/runctl

# Observability smoke: a traced synthesis and benchmark row, every JSONL
# event and the metrics snapshot schema-validated by mmtrace.
echo "==> trace smoke (mmsynth -trace/-metrics through mmtrace)"
./scripts/trace_smoke.sh

# Job-service smoke: boot mmserved, one job over HTTP to a certified
# result, clean SIGTERM drain (exit 0).
echo "==> serve smoke (mmserved job service)"
./scripts/serve_smoke.sh

# Fleet chaos smoke: two nodes over one shared fleet directory, four jobs,
# kill -9 one node mid-run; the survivor must steal the orphaned leases and
# finish every job exactly once with certified results.
echo "==> fleet chaos smoke (mmserved multi-node node-loss recovery)"
./scripts/fleet_chaos_smoke.sh

# Result-cache smoke: resubmission must hit the content-addressed cache,
# a corrupted entry must be evicted and re-run (never served), and a batch
# of 6 cells with 2 duplicates must run exactly 4 jobs.
echo "==> cache smoke (mmserved result cache + batch API)"
./scripts/cache_smoke.sh

# Performance-trajectory smoke: mmperf run + self-diff (exit 0) + a
# synthetic regression the gate must flag (exit 1), then one mmserved job
# with lifecycle tracing and the access log, validated by mmtrace.
echo "==> perf smoke (mmperf run/diff, mmserved -lifecycle-trace)"
./scripts/perf_smoke.sh

# Certification sweep: every benchmark spec through `mmsynth -certify` at
# a small GA budget, plus a fault-injection negative control (exit 4).
echo "==> certify (specs/ through mmsynth -certify)"
./scripts/certify.sh

echo "==> OK"
