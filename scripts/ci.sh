#!/bin/sh
# ci.sh — the full verification pipeline, runnable locally and in CI.
# Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

# Fuzz smoke: a short native-fuzzing burst over the spec reader. The
# minimise time must be capped — the default 60s minimiser can dwarf the
# fuzz time itself on the ~30KB seed corpus entries.
echo "==> fuzz smoke (specio.FuzzRead)"
go test -run='^$' -fuzz=FuzzRead -fuzztime=5s -fuzzminimizetime=5s ./internal/specio

echo "==> OK"
