#!/bin/sh
# fleet_chaos_smoke.sh — node-loss smoke test of the mmserved fleet mode:
# boot two nodes over one shared fleet directory, submit four jobs, kill -9
# one node mid-run, and require that the survivor recovers the orphaned
# leases and drives every job to a certified terminal state — no job lost,
# no job committed twice. See docs/FLEET.md.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
node1_pid=""
node2_pid=""
cleanup() {
    [ -n "$node1_pid" ] && kill -9 "$node1_pid" 2>/dev/null || true
    [ -n "$node2_pid" ] && kill -9 "$node2_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "==> build mmserved + mmgen"
go build -o "$workdir" ./cmd/mmserved ./cmd/mmgen

echo "==> generate a spec"
"$workdir/mmgen" -seed 5 -o "$workdir/inst.spec"
spec=$(cat "$workdir/inst.spec")

fleet="$workdir/fleet"

# boot_node <name> <stdout-file> [extra flags...]: start one fleet node in
# the background. Runs in the current shell (not a subshell) so the
# caller's `wait` can reap the process and read its exit status; pick up
# the pid via $!.
boot_node() {
    _name=$1; _out=$2; shift 2
    "$workdir/mmserved" -addr 127.0.0.1:0 -fleet-dir "$fleet" -node-id "$_name" \
        -lease-ttl 1s -heartbeat 100ms -workers 2 -checkpoint-every 2 "$@" \
        > "$_out" 2> "$_out.err" &
}

await_base() { # await_base <stdout-file> <pid>
    base=""
    for _ in $(seq 50); do
        base=$(sed -n 's/^mmserved listening on //p' "$1")
        [ -n "$base" ] && break
        kill -0 "$2" 2>/dev/null || { cat "$1.err"; exit 1; }
        sleep 0.1
    done
    [ -n "$base" ] || { echo "mmserved never announced its address"; cat "$1.err"; exit 1; }
    echo "$base"
}

echo "==> boot two fleet nodes on a shared directory"
boot_node victim "$workdir/n1.out"
node1_pid=$!
boot_node survivor "$workdir/n2.out"
node2_pid=$!
base1=$(await_base "$workdir/n1.out" "$node1_pid")
base2=$(await_base "$workdir/n2.out" "$node2_pid")
echo "    victim   $base1"
echo "    survivor $base2"

echo "==> submit 4 jobs"
ids=""
for seed in 1 2 3 4; do
    job=$(curl -sfS -X POST "$base1/v1/jobs" \
        -d "$(printf '{"spec":%s,"seed":%d,"ga":{"pop_size":32,"max_generations":1500,"stagnation":1500}}' \
            "$(printf '%s' "$spec" | python3 -c 'import json,sys; print(json.dumps(sys.stdin.read()))')" "$seed")")
    id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    [ -n "$id" ] || { echo "submission returned no job id: $job"; exit 1; }
    ids="$ids $id"
done
echo "    accepted:$ids"

echo "==> wait for a job to run on the victim, then kill -9 it"
killed=no
for _ in $(seq 300); do
    for id in $ids; do
        st=$(curl -sfS "$base1/v1/jobs/$id")
        node=$(printf '%s' "$st" | sed -n 's/.*"node": *"\([^"]*\)".*/\1/p')
        state=$(printf '%s' "$st" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        if [ "$state" = running ] && [ "$node" = victim ]; then
            kill -9 "$node1_pid"
            wait "$node1_pid" 2>/dev/null || true
            node1_pid=""
            killed=yes
            echo "    killed the victim while $id was running on it"
            break
        fi
    done
    [ "$killed" = yes ] && break
    sleep 0.1
done
[ "$killed" = yes ] || { echo "no job ever ran on the victim"; exit 1; }

echo "==> survivor recovers and finishes every job"
for id in $ids; do
    state=queued
    for _ in $(seq 1200); do
        state=$(curl -sfS "$base2/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        case "$state" in
            done) break ;;
            failed|cancelled) echo "job $id ended $state"; curl -sfS "$base2/v1/jobs/$id"; exit 1 ;;
        esac
        sleep 0.1
    done
    [ "$state" = done ] || { echo "job $id stuck in state $state"; exit 1; }
    curl -sfS "$base2/v1/jobs/$id/result" | grep -q '"certified": true' || {
        echo "job $id finished uncertified"; exit 1; }
done

echo "==> exactly-once: one committed result per job"
for id in $ids; do
    n=$(ls "$fleet/jobs/$id"/result.e*.json 2>/dev/null | wc -l)
    [ "$n" -eq 1 ] || { echo "job $id has $n committed results, want 1"; exit 1; }
done

echo "==> the survivor stole at least one lease"
curl -sfS "$base2/metrics" | grep -q '"fleet.steals"' || {
    echo "no fleet.steals counter exported"; exit 1; }

echo "==> SIGTERM drains the survivor cleanly (exit 0)"
kill -TERM "$node2_pid"
if wait "$node2_pid"; then node2_pid=""; else
    echo "survivor exited non-zero after SIGTERM"; cat "$workdir/n2.out.err"; exit 1
fi

# ---------------------------------------------------------------------------
# Poison-job drill: a crash-looping job must exhaust its attempt budget and
# land in `quarantined` — while both nodes stay live and a healthy job
# submitted alongside it completes. Quarantined jobs commit no result
# document, so the exactly-once check above does not apply to them.
echo "==> poison-job drill: fresh two-node fleet with failpoints enabled"
fleet="$workdir/fleet-poison"
boot_node poison1 "$workdir/p1.out" -failpoints -max-attempts 2 -retry-backoff 200ms
node1_pid=$!
boot_node poison2 "$workdir/p2.out" -failpoints -max-attempts 2 -retry-backoff 200ms
node2_pid=$!
pbase1=$(await_base "$workdir/p1.out" "$node1_pid")
pbase2=$(await_base "$workdir/p2.out" "$node2_pid")
echo "    poison1 $pbase1"
echo "    poison2 $pbase2"

spec_json=$(printf '%s' "$spec" | python3 -c 'import json,sys; print(json.dumps(sys.stdin.read()))')
poison=$(curl -sfS -X POST "$pbase1/v1/jobs" \
    -d "$(printf '{"spec":%s,"seed":9,"failpoint":"panic","ga":{"pop_size":16,"max_generations":50,"stagnation":50}}' "$spec_json")")
poison_id=$(printf '%s' "$poison" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
good=$(curl -sfS -X POST "$pbase1/v1/jobs" \
    -d "$(printf '{"spec":%s,"seed":10,"ga":{"pop_size":16,"max_generations":50,"stagnation":50}}' "$spec_json")")
good_id=$(printf '%s' "$good" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$poison_id" ] && [ -n "$good_id" ] || { echo "poison drill submissions failed"; exit 1; }
echo "    poison $poison_id, healthy $good_id"

echo "==> the crash-looper reaches quarantined within its budget"
state=queued
for _ in $(seq 300); do
    state=$(curl -sfS "$pbase2/v1/jobs/$poison_id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = quarantined ] && break
    case "$state" in done|failed|cancelled) echo "poison job ended $state, want quarantined"; exit 1 ;; esac
    sleep 0.1
done
[ "$state" = quarantined ] || { echo "poison job stuck in state $state"; exit 1; }
curl -sfS "$pbase2/v1/jobs/$poison_id" | grep -q '"attempts": *2' || {
    echo "quarantined job does not report the exhausted budget of 2"; exit 1; }

echo "==> both nodes survived the poison"
kill -0 "$node1_pid" || { echo "poison1 died"; cat "$workdir/p1.out.err"; exit 1; }
kill -0 "$node2_pid" || { echo "poison2 died"; cat "$workdir/p2.out.err"; exit 1; }

echo "==> the healthy job still completes, certified"
state=queued
for _ in $(seq 1200); do
    state=$(curl -sfS "$pbase1/v1/jobs/$good_id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    case "$state" in failed|cancelled|quarantined) echo "healthy job ended $state"; exit 1 ;; esac
    sleep 0.1
done
[ "$state" = done ] || { echo "healthy job stuck in state $state"; exit 1; }
curl -sfS "$pbase1/v1/jobs/$good_id/result" | grep -q '"certified": true' || {
    echo "healthy job finished uncertified"; exit 1; }

echo "==> quarantine is counted and degrades readiness on the node that decided"
q1=$(curl -sfS "$pbase1/metrics" | sed -n 's/.*"serve.jobs_quarantined": *\([0-9]*\).*/\1/p')
q2=$(curl -sfS "$pbase2/metrics" | sed -n 's/.*"serve.jobs_quarantined": *\([0-9]*\).*/\1/p')
[ $(( ${q1:-0} + ${q2:-0} )) -eq 1 ] || {
    echo "serve.jobs_quarantined across nodes = ${q1:-0}+${q2:-0}, want 1"; exit 1; }

echo "==> drain the poison fleet cleanly"
kill -TERM "$node1_pid" "$node2_pid"
if wait "$node1_pid"; then node1_pid=""; else
    echo "poison1 exited non-zero after SIGTERM"; cat "$workdir/p1.out.err"; exit 1
fi
if wait "$node2_pid"; then node2_pid=""; else
    echo "poison2 exited non-zero after SIGTERM"; cat "$workdir/p2.out.err"; exit 1
fi

echo "==> fleet chaos smoke OK"
