#!/bin/sh
# perf_smoke.sh — end-to-end smoke test of the performance-trajectory
# pipeline: run mmperf on a small spec at a tiny GA budget, then diff the
# artifact against itself (which must be a clean exit 0) and against a
# synthetically slowed copy (which must flag a regression, exit 1). A
# schema or exit-code regression in the perf gate fails CI here even if no
# unit test covers it. Also exercises the lifecycle span stream: mmserved
# -lifecycle-trace through `mmtrace -lifecycle`. See docs/PERF.md.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "==> build mmperf, mmtrace"
go build -o "$workdir" ./cmd/mmperf ./cmd/mmtrace

echo "==> measured run (mul1, 2 reps, tiny GA budget)"
"$workdir/mmperf" run -specs mul1 -reps 2 -warmups 0 \
    -pop 12 -gens 8 -stagnation 5 \
    -out "$workdir/bench.json"

echo "==> self-diff is clean (exit 0)"
"$workdir/mmperf" diff "$workdir/bench.json" "$workdir/bench.json"

echo "==> synthetic 10x wall-time regression is flagged (exit 1)"
# Multiply every wall_ns in the artifact by 10 (uniformly, so the change
# is far outside the rep-scatter noise gate); the diff gate must refuse.
awk '/"wall_ns":/ { n = $2 + 0; sub(/[0-9]+/, n * 10) } { print }' \
    "$workdir/bench.json" > "$workdir/slow.json"
if "$workdir/mmperf" diff "$workdir/bench.json" "$workdir/slow.json" > "$workdir/diff.txt" 2>&1; then
    echo "perf_smoke: diff accepted a 10x regression" >&2
    cat "$workdir/diff.txt" >&2
    exit 1
fi
grep -q 'REGRESSED' "$workdir/diff.txt"

echo "==> build mmserved (lifecycle span stream)"
go build -o "$workdir" ./cmd/mmserved

echo "==> boot mmserved with -lifecycle-trace and -access-log"
"$workdir/mmserved" -addr 127.0.0.1:0 -data "$workdir/data" -specs specs \
    -workers 1 -lifecycle-trace "$workdir/jobs.jsonl" \
    -access-log "$workdir/access.jsonl" \
    > "$workdir/stdout" 2> "$workdir/stderr" &
served_pid=$!
base=
for _ in $(seq 50); do
    base=$(sed -n 's/^mmserved listening on //p' "$workdir/stdout")
    [ -n "$base" ] && break
    kill -0 "$served_pid" 2>/dev/null || { cat "$workdir/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "mmserved never announced its address"; cat "$workdir/stderr"; exit 1; }

echo "==> run one job and drain"
job=$(curl -sfS -X POST "$base/v1/jobs" \
    -d '{"spec_name":"mul1","seed":1,"ga":{"pop_size":12,"max_generations":10,"stagnation":5}}')
id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "submission returned no job id: $job"; exit 1; }
state=queued
for _ in $(seq 600); do
    state=$(curl -sfS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    sleep 0.1
done
[ "$state" = done ] || { echo "job stuck in state $state"; exit 1; }
kill -TERM "$served_pid"
wait "$served_pid" || { echo "mmserved exited non-zero"; cat "$workdir/stderr"; exit 1; }

echo "==> lifecycle span stream validates and renders a dwell table"
"$workdir/mmtrace" -lifecycle "$workdir/jobs.jsonl" | tee "$workdir/lifecycle.txt"
grep -q 'terminal: done 1' "$workdir/lifecycle.txt"

echo "==> access log has one JSON line per request, with the job id"
grep -q "\"job\":\"$id\"" "$workdir/access.jsonl"
grep -cq '"method":"POST"' "$workdir/access.jsonl"

echo "==> perf smoke OK"
