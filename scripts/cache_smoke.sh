#!/bin/sh
# cache_smoke.sh — end-to-end smoke test of the content-addressed result
# cache and the batch API (docs/CACHE.md, docs/SERVER.md): boot mmserved
# with a cache directory, drive one job to a certified result, resubmit it
# and require an instant cache hit, corrupt the cache entry and require a
# miss + re-run (never a served corrupt result), then submit a batch of 6
# cells with 2 duplicates and require exactly 4 child jobs. A regression in
# canonical keying, the store's validation, or batch dedup fails CI here
# even if no unit test covers it.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "==> build mmserved"
go build -o "$workdir" ./cmd/mmserved

echo "==> boot mmserved with a result cache"
"$workdir/mmserved" -addr 127.0.0.1:0 -data "$workdir/data" -specs specs \
    -cache-dir "$workdir/cache" -workers 2 \
    > "$workdir/stdout" 2> "$workdir/stderr" &
served_pid=$!
for _ in $(seq 50); do
    base=$(sed -n 's/^mmserved listening on //p' "$workdir/stdout")
    [ -n "$base" ] && break
    kill -0 "$served_pid" 2>/dev/null || { cat "$workdir/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "mmserved never announced its address"; cat "$workdir/stderr"; exit 1; }
echo "    $base"

submit_body='{"spec_name":"mul1","dvs":true,"seed":1,"ga":{"pop_size":16,"max_generations":40,"stagnation":15}}'

# submit POSTs a job and prints its ID.
submit() {
    job=$(curl -sfS -X POST "$base/v1/jobs" -d "$submit_body")
    id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    [ -n "$id" ] || { echo "submission returned no job id: $job" >&2; exit 1; }
    printf '%s' "$id"
}

# await polls a job to the done state.
await() {
    state=queued
    for _ in $(seq 600); do
        state=$(curl -sfS "$base/v1/jobs/$1" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        case "$state" in
            done) return 0 ;;
            failed|cancelled|quarantined)
                echo "job $1 ended $state"; curl -sfS "$base/v1/jobs/$1"; exit 1 ;;
        esac
        sleep 0.1
    done
    echo "job $1 stuck in state $state"; exit 1
}

echo "==> first submission synthesizes for real"
id1=$(submit)
await "$id1"
curl -sfS "$base/v1/jobs/$id1" | grep -q '"cached": true' && {
    echo "first run claims to be cached"; exit 1; }
curl -sfS "$base/v1/jobs/$id1/result" | grep -q '"certified": true' || {
    echo "first result is not certified"; exit 1; }
ls "$workdir"/cache/*/*.json >/dev/null 2>&1 || {
    echo "no cache entry published"; exit 1; }

echo "==> resubmission is a cache hit: terminal at birth, cached: true"
id2=$(submit)
[ "$id2" != "$id1" ] || { echo "resubmission reused job id $id1"; exit 1; }
status2=$(curl -sfS "$base/v1/jobs/$id2")
printf '%s' "$status2" | grep -q '"state": *"done"' || {
    echo "cache hit is not terminal: $status2"; exit 1; }
printf '%s' "$status2" | grep -q '"cached": true' || {
    echo "cache hit not marked cached: $status2"; exit 1; }
curl -sfS "$base/v1/jobs/$id2/result" | grep -q '"certified": true' || {
    echo "cached result is not certified"; exit 1; }
metrics=$(curl -sfS "$base/metrics")
printf '%s' "$metrics" | grep -q '"serve.cache_hits": 1' || {
    echo "metrics do not show exactly one cache hit"; exit 1; }

echo "==> corrupt the cache entry: next submission misses and re-runs"
for entry in "$workdir"/cache/*/*.json; do
    printf 'garbage' >> "$entry"
done
id3=$(submit)
await "$id3"
curl -sfS "$base/v1/jobs/$id3" | grep -q '"cached": true' && {
    echo "corrupt entry was served as a cache hit"; exit 1; }
metrics=$(curl -sfS "$base/metrics")
printf '%s' "$metrics" | grep -q '"serve.cache_corrupt": 1' || {
    echo "corrupt entry was not detected"; exit 1; }

echo "==> batch of 6 cells with 2 duplicate seeds runs exactly 4 jobs"
batch=$(curl -sfS -X POST "$base/v1/batches" -d '{
  "specs": [{"spec_name": "mul1"}],
  "seeds": [11, 12, 13, 11, 12, 14],
  "options": [{"ga": {"pop_size": 16, "max_generations": 40, "stagnation": 15}}]
}')
bid=$(printf '%s' "$batch" | sed -n 's/.*"id": *"\(b[0-9]*\)".*/\1/p')
[ -n "$bid" ] || { echo "batch submission returned no id: $batch"; exit 1; }
for want in '"cells": 6' '"jobs": 4' '"duplicates": 2'; do
    printf '%s' "$batch" | grep -q "$want" || {
        echo "batch view missing $want:"; printf '%s\n' "$batch"; exit 1; }
done

echo "==> poll the batch to completion"
complete=false
for _ in $(seq 600); do
    bstatus=$(curl -sfS "$base/v1/batches/$bid")
    if printf '%s' "$bstatus" | grep -q '"complete": true'; then
        complete=true
        break
    fi
    sleep 0.1
done
[ "$complete" = true ] || { echo "batch never completed: $bstatus"; exit 1; }
printf '%s' "$bstatus" | grep -q '"done": 4' || {
    echo "batch finished with wrong done count: $bstatus"; exit 1; }
bresults=$(curl -sfS "$base/v1/batches/$bid/results")
printf '%s' "$bresults" | grep -q '"duplicate": true' || {
    echo "batch results lost the duplicate cells"; exit 1; }

echo "==> SIGTERM drains cleanly (exit 0)"
kill -TERM "$served_pid"
if wait "$served_pid"; then :; else
    echo "mmserved exited non-zero after SIGTERM"; cat "$workdir/stderr"; exit 1
fi

echo "==> cache smoke OK"
