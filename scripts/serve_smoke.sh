#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the mmserved job service: boot
# the daemon on a free port, submit one synthesis job over HTTP, poll it to
# certified completion, then SIGTERM the server and require a clean exit 0.
# A regression in the HTTP API, the worker pool or the drain path fails CI
# here even if no unit test covers it. See docs/SERVER.md.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "==> build mmserved"
go build -o "$workdir" ./cmd/mmserved

echo "==> boot mmserved (specs/ as the named-spec directory)"
"$workdir/mmserved" -addr 127.0.0.1:0 -data "$workdir/data" -specs specs \
    -workers 2 > "$workdir/stdout" 2> "$workdir/stderr" &
served_pid=$!
# The first stdout line announces the resolved listen address.
for _ in $(seq 50); do
    base=$(sed -n 's/^mmserved listening on //p' "$workdir/stdout")
    [ -n "$base" ] && break
    kill -0 "$served_pid" 2>/dev/null || { cat "$workdir/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "mmserved never announced its address"; cat "$workdir/stderr"; exit 1; }
echo "    $base"

echo "==> submit one job (named spec mul1, small GA budget)"
job=$(curl -sfS -X POST "$base/v1/jobs" \
    -d '{"spec_name":"mul1","dvs":true,"seed":1,"ga":{"pop_size":16,"max_generations":40,"stagnation":15}}')
id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "submission returned no job id: $job"; exit 1; }
echo "    job $id accepted"

echo "==> poll to completion"
state=queued
for _ in $(seq 600); do
    state=$(curl -sfS "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$state" in
        done) break ;;
        failed|cancelled) echo "job ended $state"; curl -sfS "$base/v1/jobs/$id"; exit 1 ;;
    esac
    sleep 0.1
done
[ "$state" = done ] || { echo "job stuck in state $state"; exit 1; }

echo "==> fetch certified result"
result=$(curl -sfS "$base/v1/jobs/$id/result")
printf '%s' "$result" | grep -q '"certified": true' || {
    echo "result is not certified:"; printf '%s\n' "$result"; exit 1; }
printf '%s' "$result" | grep -q '"feasible": true' || {
    echo "result is not feasible:"; printf '%s\n' "$result"; exit 1; }

echo "==> metrics account for the job"
curl -sfS "$base/metrics" | grep -q '"serve.jobs_done": 1'

echo "==> SIGTERM drains cleanly (exit 0)"
kill -TERM "$served_pid"
if wait "$served_pid"; then :; else
    echo "mmserved exited non-zero after SIGTERM"; cat "$workdir/stderr"; exit 1
fi

echo "==> serve smoke OK"
