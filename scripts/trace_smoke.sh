#!/bin/sh
# trace_smoke.sh — end-to-end smoke test of the observability pipeline:
# run mmsynth with -trace/-metrics on a small spec, then validate every
# JSONL event and the metrics snapshot with mmtrace. A schema regression
# in the trace writer fails CI here even if no unit test covers it.
# See docs/OBSERVABILITY.md.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "==> build mmsynth, mmbench, mmtrace"
go build -o "$workdir" ./cmd/mmsynth ./cmd/mmbench ./cmd/mmtrace

echo "==> traced synthesis (specs/mul1.spec, small GA budget)"
"$workdir/mmsynth" -spec specs/mul1.spec -dvs \
    -pop 16 -gens 25 -stagnation 10 \
    -trace "$workdir/run.jsonl" -metrics "$workdir/metrics.json" \
    > "$workdir/report.txt"
grep -q '^mutations' "$workdir/report.txt"
grep -q '^phase times' "$workdir/report.txt"

echo "==> validate trace + metrics"
"$workdir/mmtrace" -summary -metrics "$workdir/metrics.json" "$workdir/run.jsonl"

echo "==> traced benchmark row (Table 3, 1 rep)"
"$workdir/mmbench" -table 3 -reps 1 -pop 12 -gens 10 -progress \
    -trace "$workdir/bench.jsonl" > /dev/null
"$workdir/mmtrace" "$workdir/bench.jsonl"

echo "==> trace smoke OK"
